// bridge::build_topology: assembled parametric topologies must carry real
// traffic -- STP converges on loopy shapes, hosts ping across the extended
// LAN, and shared segments with many bridges (star hubs, tree trunks) must
// not melt down (regression for the TCN amplification storm).
#include "src/bridge/topology.h"

#include <gtest/gtest.h>

#include "src/netsim/trace.h"

namespace ab::bridge {
namespace {

netsim::TopologySpec spec_of(netsim::TopologyShape shape, int nodes, int hosts = 0) {
  netsim::TopologySpec spec;
  spec.shape = shape;
  spec.nodes = nodes;
  spec.hosts_per_lan = hosts;
  return spec;
}

int ping_across(netsim::Network& net, stack::HostStack& src, stack::HostStack& dst) {
  int replies = 0;
  src.set_echo_handler([&](const stack::HostStack::EchoReply&) { ++replies; });
  src.send_echo_request(dst.ip(), 7, 1, {});
  net.scheduler().run_for(netsim::seconds(3));
  return replies;
}

TEST(BuildTopology, RingConvergesAndCarriesTraffic) {
  netsim::Network net;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kRing, 4, 1));
  ASSERT_EQ(topo.bridges.size(), 4u);
  ASSERT_EQ(topo.hosts.size(), 4u);
  net.scheduler().run_for(netsim::seconds(45));
  EXPECT_TRUE(topo.stp_converged());
  // One loop, one cut.
  EXPECT_EQ(topo.count_gates(PortGate::kBlocked), 1);
  EXPECT_EQ(topo.count_gates(PortGate::kForwarding), 7);
  // Hosts on opposite sides reach each other.
  EXPECT_EQ(ping_across(net, topo.host(0), topo.host(2)), 1);
  EXPECT_GT(topo.mac_entries(), 0u);
}

TEST(BuildTopology, HostAddressesAreUniqueAndOrdered) {
  netsim::Network net;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kLine, 2, 2));
  ASSERT_EQ(topo.hosts.size(), 6u);  // 3 segments x 2 hosts
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.hosts.size(); ++j) {
      EXPECT_FALSE(topo.host(i).ip() == topo.host(j).ip());
    }
  }
}

TEST(BuildTopology, RejectsHostCountsTheAddressingCannotHold) {
  netsim::Network net;
  EXPECT_THROW(build_topology(net, spec_of(netsim::TopologyShape::kLine, 1, 254)),
               std::invalid_argument);
  // 253 per LAN is the last count that fits the 10.x.y.z scheme.
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kLine, 1, 253),
                             {}, TopologyBuildOptions{});
  EXPECT_EQ(topo.hosts.size(), 2u * 253u);
}

TEST(BuildTopology, OptionsSelectModules) {
  netsim::Network net;
  TopologyBuildOptions opts;
  opts.stp = false;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kLine, 1, 0), {}, opts);
  EXPECT_NE(topo.bridges[0]->node().loader().find("bridge.dumb"), nullptr);
  EXPECT_NE(topo.bridges[0]->node().loader().find("bridge.learning"), nullptr);
  EXPECT_EQ(topo.bridges[0]->node().loader().find("stp.ieee"), nullptr);
  EXPECT_TRUE(topo.stp_engines().empty());
  EXPECT_FALSE(topo.stp_converged());
}

// Regression: a segment shared by many bridges (a star hub) used to melt
// down because every bridge on the segment re-propagated TCNs onto the
// same wire (exponential amplification). The hub must stay quiet: the
// whole convergence window plus traffic is a few thousand frames, not
// millions.
TEST(BuildTopology, StarHubDoesNotAmplifyTcns) {
  netsim::Network net;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kStar, 8, 1));
  netsim::FrameTrace trace;
  trace.watch(*topo.shape.lans[0]);  // the hub
  net.scheduler().run_for(netsim::seconds(60));
  EXPECT_TRUE(topo.stp_converged());
  // Loop-free: nothing to block.
  EXPECT_EQ(topo.count_gates(PortGate::kBlocked), 0);
  // 60 s of hellos + the forwarding-transition TCN burst across 8 bridges:
  // linear traffic. The storm this guards against was ~10^6 frames.
  EXPECT_LT(trace.size(), 2000u);
  EXPECT_EQ(ping_across(net, topo.host(0), topo.host(8)), 1);
}

TEST(BuildTopology, TreeTrunkSegmentsStayQuiet) {
  netsim::Network net;
  netsim::TopologySpec spec = spec_of(netsim::TopologyShape::kTree, 7, 0);
  spec.tree_arity = 2;
  auto topo = build_topology(net, spec);
  net.scheduler().run_for(netsim::seconds(60));
  EXPECT_TRUE(topo.stp_converged());
  EXPECT_EQ(topo.count_gates(PortGate::kBlocked), 0);
  std::uint64_t frames = 0;
  for (auto* lan : topo.shape.lans) frames += lan->stats().frames_carried;
  EXPECT_LT(frames, 5000u);
}

TEST(BuildTopology, MeshConvergesWithManyLoopsCut) {
  netsim::Network net;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kMesh, 4, 0));
  net.scheduler().run_for(netsim::seconds(60));
  EXPECT_TRUE(topo.stp_converged());
  // 6 p2p segments, 12 bridge ports, spanning tree keeps 4 nodes on 3
  // active links: every redundant pair is cut somewhere.
  EXPECT_GT(topo.count_gates(PortGate::kBlocked), 0);
}

}  // namespace
}  // namespace ab::bridge
