// bridge::build_topology: assembled parametric topologies must carry real
// traffic -- STP converges on loopy shapes, hosts ping across the extended
// LAN, and shared segments with many bridges (star hubs, tree trunks) must
// not melt down (regression for the TCN amplification storm).
#include "src/bridge/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "src/netsim/trace.h"

namespace ab::bridge {
namespace {

netsim::TopologySpec spec_of(netsim::TopologyShape shape, int nodes, int hosts = 0) {
  netsim::TopologySpec spec;
  spec.shape = shape;
  spec.nodes = nodes;
  spec.hosts_per_lan = hosts;
  return spec;
}

int ping_across(netsim::Network& net, stack::HostStack& src, stack::HostStack& dst) {
  int replies = 0;
  src.set_echo_handler([&](const stack::HostStack::EchoReply&) { ++replies; });
  src.send_echo_request(dst.ip(), 7, 1, {});
  net.scheduler().run_for(netsim::seconds(3));
  return replies;
}

TEST(BuildTopology, RingConvergesAndCarriesTraffic) {
  netsim::Network net;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kRing, 4, 1));
  ASSERT_EQ(topo.bridges.size(), 4u);
  ASSERT_EQ(topo.hosts.size(), 4u);
  net.scheduler().run_for(netsim::seconds(45));
  EXPECT_TRUE(topo.stp_converged());
  // One loop, one cut.
  EXPECT_EQ(topo.count_gates(PortGate::kBlocked), 1);
  EXPECT_EQ(topo.count_gates(PortGate::kForwarding), 7);
  // Hosts on opposite sides reach each other.
  EXPECT_EQ(ping_across(net, topo.host(0), topo.host(2)), 1);
  EXPECT_GT(topo.mac_entries(), 0u);
}

TEST(BuildTopology, HostAddressesAreUniqueAndOrdered) {
  netsim::Network net;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kLine, 2, 2));
  ASSERT_EQ(topo.hosts.size(), 6u);  // 3 segments x 2 hosts
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.hosts.size(); ++j) {
      EXPECT_FALSE(topo.host(i).ip() == topo.host(j).ip());
    }
  }
}

TEST(BuildTopology, ThousandStationLansGetUniqueAddresses) {
  // The old 10.<lan>.<lan>.<host> scheme capped at 253 hosts per LAN; the
  // flat ordinal plan must hold thousand-station LANs without collisions.
  netsim::Network net;
  TopologyBuildOptions opts;
  opts.stp = false;  // no convergence needed; this is an addressing test
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kLine, 1, 600), {},
                             opts);
  ASSERT_EQ(topo.hosts.size(), 2u * 600u);
  std::set<std::uint32_t> seen;
  for (const auto& host : topo.hosts) {
    const stack::Ipv4Addr ip = host->ip();
    EXPECT_TRUE(seen.insert(ip.value()).second) << ip.to_string() << " assigned twice";
    // Nothing may read as a network/broadcast address.
    EXPECT_NE(ip.value() & 0xFF, 0u) << ip.to_string();
    EXPECT_NE(ip.value() & 0xFF, 255u) << ip.to_string();
  }
}

TEST(BuildTopology, AddressPlanSlicesAreDisjoint) {
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(topology_host_ip(i).value()).second);
  }
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_TRUE(seen.insert(topology_loader_ip(i).value()).second);
    EXPECT_TRUE(seen.insert(topology_admin_ip(i).value()).second);
  }
  // The loader slice is one /16: ordinal 254*256 is the first that no
  // longer fits.
  EXPECT_THROW((void)topology_loader_ip(254u * 256u), std::invalid_argument);
}

TEST(BuildTopology, NetloaderOptionArmsEveryBridge) {
  netsim::Network net;
  TopologyBuildOptions opts;
  opts.netloader = true;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kRing, 3, 1), {},
                             opts);
  for (std::size_t b = 0; b < topo.bridges.size(); ++b) {
    ASSERT_TRUE(topo.bridges[b]->config().loader_ip.has_value());
    EXPECT_EQ(*topo.bridges[b]->config().loader_ip, topology_loader_ip(b));
    EXPECT_NE(topo.bridges[b]->node().loader().find("loader.net"), nullptr);
  }
}

TEST(BuildTopology, OptionsSelectModules) {
  netsim::Network net;
  TopologyBuildOptions opts;
  opts.stp = false;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kLine, 1, 0), {}, opts);
  EXPECT_NE(topo.bridges[0]->node().loader().find("bridge.dumb"), nullptr);
  EXPECT_NE(topo.bridges[0]->node().loader().find("bridge.learning"), nullptr);
  EXPECT_EQ(topo.bridges[0]->node().loader().find("stp.ieee"), nullptr);
  EXPECT_TRUE(topo.stp_engines().empty());
  EXPECT_FALSE(topo.stp_converged());
}

// Regression: a segment shared by many bridges (a star hub) used to melt
// down because every bridge on the segment re-propagated TCNs onto the
// same wire (exponential amplification). The hub must stay quiet: the
// whole convergence window plus traffic is a few thousand frames, not
// millions.
TEST(BuildTopology, StarHubDoesNotAmplifyTcns) {
  netsim::Network net;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kStar, 8, 1));
  netsim::FrameTrace trace;
  trace.watch(*topo.shape.lans[0]);  // the hub
  net.scheduler().run_for(netsim::seconds(60));
  EXPECT_TRUE(topo.stp_converged());
  // Loop-free: nothing to block.
  EXPECT_EQ(topo.count_gates(PortGate::kBlocked), 0);
  // 60 s of hellos + the forwarding-transition TCN burst across 8 bridges:
  // linear traffic. The storm this guards against was ~10^6 frames.
  EXPECT_LT(trace.size(), 2000u);
  EXPECT_EQ(ping_across(net, topo.host(0), topo.host(8)), 1);
}

TEST(BuildTopology, TreeTrunkSegmentsStayQuiet) {
  netsim::Network net;
  netsim::TopologySpec spec = spec_of(netsim::TopologyShape::kTree, 7, 0);
  spec.tree_arity = 2;
  auto topo = build_topology(net, spec);
  net.scheduler().run_for(netsim::seconds(60));
  EXPECT_TRUE(topo.stp_converged());
  EXPECT_EQ(topo.count_gates(PortGate::kBlocked), 0);
  std::uint64_t frames = 0;
  for (auto* lan : topo.shape.lans) frames += lan->stats().frames_carried;
  EXPECT_LT(frames, 5000u);
}

TEST(BuildTopology, MeshConvergesWithManyLoopsCut) {
  netsim::Network net;
  auto topo = build_topology(net, spec_of(netsim::TopologyShape::kMesh, 4, 0));
  net.scheduler().run_for(netsim::seconds(60));
  EXPECT_TRUE(topo.stp_converged());
  // 6 p2p segments, 12 bridge ports, spanning tree keeps 4 nodes on 3
  // active links: every redundant pair is cut somewhere.
  EXPECT_GT(topo.count_gates(PortGate::kBlocked), 0);
}

TEST(BuildTopology, RandomKRegularConvergesAndCarriesTraffic) {
  netsim::Network net;
  netsim::TopologySpec spec = spec_of(netsim::TopologyShape::kRandomKRegular, 8, 1);
  spec.degree = 3;
  spec.seed = 42;
  auto topo = build_topology(net, spec);
  ASSERT_EQ(topo.bridges.size(), 8u);
  ASSERT_EQ(topo.shape.lans.size(), 12u);  // 8*3/2 point-to-point segments
  net.scheduler().run_for(netsim::seconds(60));
  EXPECT_TRUE(topo.stp_converged());
  // 12 edges over 8 nodes: 5 redundant links, each cut at one end.
  EXPECT_EQ(topo.count_gates(PortGate::kBlocked), 5);
  EXPECT_EQ(ping_across(net, topo.host(0), topo.host(topo.hosts.size() - 1)), 1);
}

TEST(BuildTopology, ScaleFreeConvergesAndCarriesTraffic) {
  netsim::Network net;
  netsim::TopologySpec spec = spec_of(netsim::TopologyShape::kScaleFree, 12, 1);
  spec.attach = 2;
  spec.seed = 3;
  auto topo = build_topology(net, spec);
  ASSERT_EQ(topo.bridges.size(), 12u);
  // Seed clique C(3,2)=3 edges + 9 newcomers x 2.
  ASSERT_EQ(topo.shape.lans.size(), 21u);
  net.scheduler().run_for(netsim::seconds(60));
  EXPECT_TRUE(topo.stp_converged());
  EXPECT_EQ(ping_across(net, topo.host(0), topo.host(topo.hosts.size() - 1)), 1);
}

// Regression for the TCA satellite: a lossy segment between a notifying
// bridge and the root used to swallow TCNs silently (they were sent once,
// unacknowledged). With topology-change acknowledgment the notifier
// retransmits every hello time until the designated bridge acks, so the
// root reliably learns of the change even at 60% loss.
TEST(BuildTopology, TopologyChangeSurvivesLossySegment) {
  netsim::Network net;
  netsim::TopologySpec spec = spec_of(netsim::TopologyShape::kLine, 3, 0);
  netsim::LanConfig lossy;
  lossy.loss = 0.6;
  lossy.seed = 99;
  spec.lan_overrides[1] = lossy;  // between bridge0 and bridge1
  auto topo = build_topology(net, spec);
  net.scheduler().run_for(netsim::seconds(60));
  ASSERT_TRUE(topo.stp_converged());

  // bridge0 (lowest MAC) is root on a line. The far bridge's ports going
  // Forwarding at t=30 raised topology events that had to cross the lossy
  // segment as TCNs; with 60% loss the first copy usually dies, so only
  // retransmission gets them through.
  const std::vector<StpEngine*> engines = topo.stp_engines();
  ASSERT_EQ(engines.size(), 3u);
  StpEngine* root = nullptr;
  std::uint64_t retransmits = 0;
  std::uint64_t tcas_received = 0;
  for (StpEngine* e : engines) {
    if (e->is_root()) root = e;
    retransmits += e->stats().tcn_retransmits;
    tcas_received += e->stats().tcas_received;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_GT(root->stats().tcns_received, 0u);  // the change reached the root
  EXPECT_GT(retransmits, 0u);                  // ...because someone kept trying
  EXPECT_GT(tcas_received, 0u);                // ...until the ack landed
}

}  // namespace
}  // namespace ab::bridge
