// The automatic protocol transition (paper section 5.4, Table 1): pass
// path, validation-failure fallback, and late-old-packet fallback.
#include "src/bridge/control.h"

#include <gtest/gtest.h>

#include "tests/bridge/bridge_test_util.h"

namespace ab::bridge {
namespace {

using testing::RingFixture;

/// Loads the full transition suite on every ring bridge and converges the
/// DEC protocol.
struct TransitionRing {
  RingFixture ring;
  std::vector<ControlSwitchlet*> controls;

  explicit TransitionRing(ControlConfig cfg = {}) : ring(3) {
    for (auto& b : ring.bridges) {
      controls.push_back(b->load_transition_suite(cfg));
    }
    // Let the old (DEC) protocol converge.
    ring.net.scheduler().run_for(netsim::seconds(45));
  }

  /// Injects the trigger: one IEEE BPDU on lan0 (the paper injects it from
  /// a measurement host).
  void inject_ieee_trigger() {
    auto& probe = ring.net.add_nic("trigger", *ring.lans[0]);
    IeeeBpduCodec ieee;
    Bpdu b;
    b.root = BridgeId{0x8000, probe.mac()};
    b.bridge = b.root;
    b.port_id = 0x8001;
    probe.transmit(ieee.encode(b, probe.mac()));
  }

  active::SwitchletState state(int i, const std::string& name) {
    return ring.bridges[static_cast<std::size_t>(i)]->node().loader().state_of(name);
  }
};

TEST(ProtocolTransition, PreconditionsEnforced) {
  RingFixture ring(1);
  auto& b = *ring.bridges[0];
  b.load_dumb();
  b.load_learning();
  // Control without either protocol loaded: start fails, loader contains it.
  auto loaded = b.node().loader().load_instance(
      std::make_unique<ControlSwitchlet>(b.node().loader()));
  EXPECT_FALSE(loaded.has_value());

  // DEC loaded but NOT running: still refused.
  b.load_dec(/*autostart=*/false);
  b.load_ieee(/*autostart=*/false);
  auto loaded2 = b.node().loader().load_instance(
      std::make_unique<ControlSwitchlet>(b.node().loader()));
  EXPECT_FALSE(loaded2.has_value());

  // DEC running, IEEE idle: accepted.
  b.node().loader().start("stp.dec");
  auto loaded3 = b.node().loader().load_instance(
      std::make_unique<ControlSwitchlet>(b.node().loader()));
  EXPECT_TRUE(loaded3.has_value());
}

TEST(ProtocolTransition, HappyPathUpgradesAllBridges) {
  TransitionRing t;
  // Before the trigger: DEC running, IEEE loaded, control monitoring.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.state(i, "stp.dec"), active::SwitchletState::kRunning);
    EXPECT_EQ(t.state(i, "stp.ieee"), active::SwitchletState::kLoaded);
    EXPECT_EQ(t.controls[static_cast<std::size_t>(i)]->phase(),
              TransitionPhase::kMonitoring);
  }

  t.inject_ieee_trigger();
  t.ring.net.scheduler().run_for(netsim::seconds(1));

  // The trigger cascades: every bridge transitions (the started IEEE
  // protocol "sends out configuration packets on all of its ports thus
  // causing any bridge... that has not transitioned to do so").
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.state(i, "stp.dec"), active::SwitchletState::kSuspended) << i;
    EXPECT_EQ(t.state(i, "stp.ieee"), active::SwitchletState::kRunning) << i;
    EXPECT_EQ(t.controls[static_cast<std::size_t>(i)]->phase(),
              TransitionPhase::kTransitioning);
    EXPECT_TRUE(t.controls[static_cast<std::size_t>(i)]->captured_old_tree()
                    .has_value());
  }

  // After the 60 s validation point: pass everywhere.
  t.ring.net.scheduler().run_for(netsim::seconds(70));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.controls[static_cast<std::size_t>(i)]->phase(),
              TransitionPhase::kValidated)
        << i;
    EXPECT_EQ(t.state(i, "stp.ieee"), active::SwitchletState::kRunning);
  }
  // The new tree matches the old one: 1 blocked, 5 forwarding.
  EXPECT_EQ(t.ring.count_gates(PortGate::kBlocked), 1);
}

TEST(ProtocolTransition, EventsReproduceTable1Shape) {
  TransitionRing t;
  t.inject_ieee_trigger();
  t.ring.net.scheduler().run_for(netsim::seconds(70));
  const auto& events = t.controls[0]->events();
  ASSERT_GE(events.size(), 5u);
  EXPECT_EQ(events[0].action, "load/start control");
  EXPECT_NE(events[1].action.find("recv ieee packet"), std::string::npos);
  EXPECT_NE(events[1].control_note.find("suspend dec"), std::string::npos);
  EXPECT_NE(events[2].control_note.find("start ieee"), std::string::npos);
  bool saw_pass = false;
  for (const auto& e : events) {
    if (e.action == "perform tests") {
      EXPECT_EQ(e.control_note, "pass");
      saw_pass = true;
    }
  }
  EXPECT_TRUE(saw_pass);
}

TEST(ProtocolTransition, OldPacketsDuringWindowAreSuppressed) {
  TransitionRing t;
  t.inject_ieee_trigger();
  t.ring.net.scheduler().run_for(netsim::seconds(1));
  // A laggard (un-upgraded) device still babbling DEC during the window.
  auto& laggard = t.ring.net.add_nic("laggard", *t.ring.lans[1]);
  DecBpduCodec dec;
  Bpdu b;
  b.root = BridgeId{0x8000, laggard.mac()};
  b.bridge = b.root;
  laggard.transmit(dec.encode(b, laggard.mac()));
  t.ring.net.scheduler().run_for(netsim::seconds(5));
  // Suppressed: nobody fell back.
  std::uint64_t suppressed = 0;
  for (auto* c : t.controls) {
    EXPECT_NE(c->phase(), TransitionPhase::kFallback);
    suppressed += c->suppressed_old_packets();
  }
  EXPECT_GT(suppressed, 0u);
}

TEST(ProtocolTransition, ValidationFailureFallsBack) {
  // Fault injection through the validator hook: the "new protocol" is
  // declared buggy on every bridge.
  ControlConfig cfg;
  cfg.validator = [](const StpSnapshot&, const StpSnapshot&) { return false; };
  TransitionRing t(cfg);
  t.inject_ieee_trigger();
  t.ring.net.scheduler().run_for(netsim::seconds(90));

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.controls[static_cast<std::size_t>(i)]->phase(),
              TransitionPhase::kFallback)
        << i;
    // Fallback restarted the old protocol and stopped the new one.
    EXPECT_EQ(t.state(i, "stp.dec"), active::SwitchletState::kRunning) << i;
    EXPECT_EQ(t.state(i, "stp.ieee"), active::SwitchletState::kStopped) << i;
  }
  // The DEC protocol reconverges to a sane tree.
  t.ring.net.scheduler().run_for(netsim::seconds(45));
  EXPECT_EQ(t.ring.count_gates(PortGate::kBlocked), 1);
}

TEST(ProtocolTransition, LateOldPacketAfterWindowFallsBack) {
  // Close the window quickly so the test stays sharp.
  ControlConfig cfg;
  cfg.suppress_window = netsim::seconds(5);
  cfg.validate_after = netsim::seconds(300);  // validation far away
  TransitionRing t(cfg);
  t.inject_ieee_trigger();
  t.ring.net.scheduler().run_for(netsim::seconds(10));  // window closed

  auto& laggard = t.ring.net.add_nic("laggard", *t.ring.lans[0]);
  DecBpduCodec dec;
  Bpdu b;
  b.root = BridgeId{0x8000, laggard.mac()};
  b.bridge = b.root;
  laggard.transmit(dec.encode(b, laggard.mac()));
  t.ring.net.scheduler().run_for(netsim::seconds(5));

  // At least the bridges on lan0 saw the late DEC packet and fell back.
  int fallbacks = 0;
  for (auto* c : t.controls) {
    if (c->phase() == TransitionPhase::kFallback) ++fallbacks;
  }
  EXPECT_GE(fallbacks, 1);
}

TEST(ProtocolTransition, FallbackSuppressesNewProtocolPackets) {
  ControlConfig cfg;
  cfg.validator = [](const StpSnapshot&, const StpSnapshot&) { return false; };
  TransitionRing t(cfg);
  t.inject_ieee_trigger();
  t.ring.net.scheduler().run_for(netsim::seconds(90));
  ASSERT_EQ(t.controls[0]->phase(), TransitionPhase::kFallback);

  // A stray IEEE packet now: suppressed, no re-transition ("no further
  // transition will occur without human intervention").
  t.inject_ieee_trigger();
  t.ring.net.scheduler().run_for(netsim::seconds(5));
  std::uint64_t suppressed = 0;
  for (auto* c : t.controls) {
    EXPECT_EQ(c->phase(), TransitionPhase::kFallback);
    suppressed += c->suppressed_new_packets();
  }
  EXPECT_GT(suppressed, 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.state(i, "stp.ieee"), active::SwitchletState::kStopped);
    EXPECT_EQ(t.state(i, "stp.dec"), active::SwitchletState::kRunning);
  }
}

TEST(ProtocolTransition, TransitionPhaseNames) {
  EXPECT_EQ(to_string(TransitionPhase::kMonitoring), "monitoring");
  EXPECT_EQ(to_string(TransitionPhase::kTransitioning), "transitioning");
  EXPECT_EQ(to_string(TransitionPhase::kValidated), "validated");
  EXPECT_EQ(to_string(TransitionPhase::kFallback), "fallback");
}

}  // namespace
}  // namespace ab::bridge
