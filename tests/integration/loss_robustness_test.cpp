// Failure injection: the spanning tree and the loader's TFTP path must
// survive a lossy wire. BPDU loss is absorbed by the hello/max-age timer
// margins (10 consecutive hellos must vanish before stored info expires);
// TFTP rides its retransmission.
#include <gtest/gtest.h>

#include "src/apps/ping.h"
#include "src/bridge/topology.h"
#include "src/netsim/trace.h"

namespace ab {
namespace {

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, RingStaysLoopFreeAndConnectedUnderLoss) {
  const double loss = GetParam();
  netsim::Network net;
  // A lossy three-bridge ring, declared: every segment carries the same
  // loss rate with a distinct deterministic seed via lan_overrides.
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kRing;
  spec.nodes = 3;
  for (int i = 0; i < 3; ++i) {
    netsim::LanConfig cfg;
    cfg.loss = loss;
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    spec.lan_overrides[i] = cfg;
  }
  auto ring = bridge::build_topology(net, spec);
  const auto& lans = ring.shape.lans;
  netsim::FrameTrace trace;
  for (auto* lan : lans) trace.watch(*lan);
  net.scheduler().run_for(netsim::seconds(60));

  // Still exactly one root, unanimously agreed, despite lost BPDUs.
  const std::vector<bridge::StpEngine*> engines = ring.stp_engines();
  int roots = 0;
  for (auto* e : engines) roots += e->is_root() ? 1 : 0;
  EXPECT_EQ(roots, 1);
  for (auto* e : engines) EXPECT_EQ(e->root_id(), engines[0]->root_id());
  EXPECT_TRUE(ring.stp_converged());

  // Loop-free: a burst of broadcasts stays bounded.
  trace.clear();
  auto& probe = net.add_nic("probe", *lans[0]);
  for (int i = 0; i < 10; ++i) {
    probe.transmit(ether::Frame::ethernet2(ether::MacAddress::broadcast(), probe.mac(),
                                           ether::EtherType::kExperimental, {1}));
  }
  net.scheduler().run_for(netsim::seconds(2));
  EXPECT_LT(trace.count_if([](const netsim::TraceEntry& e) {
              return e.decoded_ok && e.dst.is_broadcast();
            }),
            100u);

  // Connected: ping succeeds across the ring (retrying through loss).
  stack::HostConfig ha;
  ha.ip = stack::Ipv4Addr(10, 0, 0, 1);
  stack::HostStack host_a(net.scheduler(), net.add_nic("hostA", *lans[0]), ha);
  stack::HostConfig hb;
  hb.ip = stack::Ipv4Addr(10, 0, 0, 2);
  stack::HostStack host_b(net.scheduler(), net.add_nic("hostB", *lans[1]), hb);
  apps::PingApp ping(net.scheduler(), host_a, host_b.ip());
  ping.run(30, 64, netsim::milliseconds(200));
  net.scheduler().run_for(netsim::seconds(10));
  EXPECT_GT(ping.stats().received, 10);  // most pings survive 2x-5x loss rolls
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep, ::testing::Values(0.01, 0.05, 0.10));

}  // namespace
}  // namespace ab
