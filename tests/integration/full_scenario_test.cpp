// The paper's complete story, end to end, in one simulation:
//
//   1. three empty active nodes in a ring, each with only its network
//      loader (the node can be programmed but does nothing else);
//   2. an administrator host TFTP-loads dumb + learning + DEC spanning
//      tree + idle IEEE + control into every node, over the network, while
//      the network it is using to do so comes up underneath it;
//   3. user traffic flows across the bridged ring;
//   4. the protocol transition is triggered; traffic recovers after the
//      forwarding-delay window; the new protocol validates;
//   5. throughout, the ring never storms.
#include <gtest/gtest.h>

#include <set>

#include "src/apps/ping.h"
#include "src/bridge/bridge_node.h"
#include "src/netsim/network.h"
#include "src/netsim/trace.h"
#include "src/stack/host_stack.h"
#include "src/stack/tftp.h"

namespace ab {
namespace {

struct World {
  netsim::Network net;
  std::vector<netsim::LanSegment*> lans;
  std::vector<std::unique_ptr<bridge::BridgeNode>> bridges;
  netsim::FrameTrace trace;
  std::unique_ptr<stack::HostStack> admin;
  std::unique_ptr<stack::HostStack> user;
  std::unique_ptr<stack::TftpClient> tftp;
  std::set<std::uint16_t> bound;

  World() {
    for (int i = 0; i < 3; ++i) {
      lans.push_back(&net.add_segment("lan" + std::to_string(i)));
      trace.watch(*lans.back());
    }
    for (int i = 0; i < 3; ++i) {
      bridge::BridgeNodeConfig cfg;
      cfg.name = "bridge" + std::to_string(i);
      cfg.loader_ip = stack::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(10 + i));
      bridges.push_back(std::make_unique<bridge::BridgeNode>(net.scheduler(), cfg));
      auto& b = *bridges.back();
      b.add_port(net.add_nic(cfg.name + ".eth0", *lans[static_cast<std::size_t>(i)]));
      b.add_port(net.add_nic(cfg.name + ".eth1",
                             *lans[static_cast<std::size_t>((i + 1) % 3)]));
      b.load_netloader();
    }
    stack::HostConfig ac;
    ac.ip = stack::Ipv4Addr(10, 0, 0, 100);
    admin = std::make_unique<stack::HostStack>(net.scheduler(),
                                               net.add_nic("admin", *lans[0]), ac);
    stack::HostConfig uc;
    uc.ip = stack::Ipv4Addr(10, 0, 0, 101);
    user = std::make_unique<stack::HostStack>(net.scheduler(),
                                              net.add_nic("user", *lans[1]), uc);
    tftp = std::make_unique<stack::TftpClient>(
        net.scheduler(), [this](const stack::TftpEndpoint& peer, std::uint16_t local,
                                util::ByteBuffer packet) {
          if (bound.insert(local).second) {
            admin->bind_udp(local, [this, local](stack::Ipv4Addr src,
                                                 const stack::UdpDatagram& d) {
              tftp->on_datagram({src, d.src_port}, local, d.payload);
            });
          }
          admin->send_udp(peer.ip, local, peer.port, std::move(packet));
        });
  }

  /// Pushes a named image to one bridge; retries a few times, as an
  /// operator's TFTP client would while the network is still settling.
  bool push(int bridge_index, const std::string& module) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      bool done = false, ok = false;
      tftp->put({*bridges[static_cast<std::size_t>(bridge_index)]->config().loader_ip,
                 stack::TftpServer::kWellKnownPort},
                module + ".img", active::SwitchletImage::named(module).encode(),
                [&](bool success, const std::string&) {
                  done = true;
                  ok = success;
                });
      net.scheduler().run_for(netsim::seconds(8));
      if (done && ok) return true;
    }
    return false;
  }
};

TEST(FullScenario, NetworkBuildsItselfThenUpgradesLive) {
  World w;

  // Phase 1: program the bridges the admin can reach directly on lan0
  // (bridge0's eth0 and bridge2's eth1 both sit there). Spanning tree goes
  // in with the forwarding switchlets so the ring can never storm -- the
  // dumb bridge alone "cannot tolerate a network topology with any loops."
  for (int i : {0, 2}) {
    ASSERT_TRUE(w.push(i, "bridge.dumb")) << i;
    ASSERT_TRUE(w.push(i, "bridge.learning")) << i;
    ASSERT_TRUE(w.push(i, "stp.dec")) << i;
  }
  // Wait out their configuration phase (2 x forward delay).
  w.net.scheduler().run_for(netsim::seconds(35));

  // Phase 2: bridge1's loader is now reachable *across* bridge0 -- the
  // paper's "the diameter of the extended LAN grows by one at each
  // subsequent step." Loading its dumb switchlet closes the physical ring;
  // the neighbours' spanning tree cuts the resulting loop within a hello
  // interval, so give the network a moment to settle between pushes.
  ASSERT_TRUE(w.push(1, "bridge.dumb"));
  w.net.scheduler().run_for(netsim::seconds(10));
  ASSERT_TRUE(w.push(1, "bridge.learning"));
  ASSERT_TRUE(w.push(1, "stp.dec"));
  for (auto& b : w.bridges) {
    EXPECT_EQ(b->node().loader().state_of("stp.dec"),
              active::SwitchletState::kRunning);
  }

  // Let DEC converge; the ring must be loop-free.
  w.net.scheduler().run_for(netsim::seconds(45));
  int blocked = 0;
  for (auto& b : w.bridges) {
    for (const auto& p : b->plane().bridge_ports()) {
      if (p.gate == bridge::PortGate::kBlocked) ++blocked;
    }
  }
  EXPECT_EQ(blocked, 1);

  // Phase 3: user traffic flows across the bridged ring.
  apps::PingApp ping(w.net.scheduler(), *w.admin, w.user->ip());
  ping.run(3, 64, netsim::milliseconds(200));
  w.net.scheduler().run_for(netsim::seconds(3));
  EXPECT_EQ(ping.stats().received, 3);

  // Phase 4: load the idle IEEE switchlet and the control switchlet onto
  // every bridge, then trigger the upgrade.
  for (int i = 0; i < 3; ++i) {
    auto& b = *w.bridges[static_cast<std::size_t>(i)];
    b.load_ieee(/*autostart=*/false);
    b.load_control();
  }
  auto& trigger = w.net.add_nic("trigger", *w.lans[0]);
  bridge::IeeeBpduCodec ieee;
  bridge::Bpdu bp;
  bp.root = bridge::BridgeId{0x8000, trigger.mac()};
  bp.bridge = bp.root;
  trigger.transmit(ieee.encode(bp, trigger.mac()));
  w.net.scheduler().run_for(netsim::seconds(2));
  for (auto& b : w.bridges) {
    EXPECT_EQ(b->node().loader().state_of("stp.ieee"),
              active::SwitchletState::kRunning);
    EXPECT_EQ(b->node().loader().state_of("stp.dec"),
              active::SwitchletState::kSuspended);
  }

  // Phase 5: after the forwarding-delay window + validation, the upgrade
  // sticks and traffic flows again.
  w.net.scheduler().run_for(netsim::seconds(70));
  for (auto& b : w.bridges) {
    auto* control = dynamic_cast<bridge::ControlSwitchlet*>(
        b->node().loader().find("bridge.control"));
    EXPECT_EQ(control->phase(), bridge::TransitionPhase::kValidated);
  }
  apps::PingApp after(w.net.scheduler(), *w.admin, w.user->ip());
  after.run(3, 64, netsim::milliseconds(200));
  w.net.scheduler().run_for(netsim::seconds(3));
  EXPECT_EQ(after.stats().received, 3);

  // Phase 6: at no point did the ring storm (generous global bound).
  EXPECT_LT(w.trace.size(), 5000u);
}

TEST(FullScenario, TransitionUnderLiveTrafficLosesOnlyTheWindow) {
  // Traffic runs at 5 Hz across the ring while the protocols swap: pings
  // during the forwarding-delay window are lost, then service resumes by
  // itself -- "the transition can be expected to take time similar to what
  // would occur if there were a power failure at each of the bridges."
  World w;
  for (int i = 0; i < 3; ++i) {
    auto& b = *w.bridges[static_cast<std::size_t>(i)];
    b.load_transition_suite();
  }
  w.net.scheduler().run_for(netsim::seconds(45));  // DEC converges

  apps::PingApp ping(w.net.scheduler(), *w.admin, w.user->ip());
  ping.run(500, 64, netsim::milliseconds(200));  // 100 s of 5 Hz pings

  w.net.scheduler().schedule_after(netsim::seconds(10), [&w] {
    auto& trigger = w.net.add_nic("trigger", *w.lans[0]);
    bridge::IeeeBpduCodec ieee;
    bridge::Bpdu bp;
    bp.root = bridge::BridgeId{0x8000, trigger.mac()};
    bp.bridge = bp.root;
    trigger.transmit(ieee.encode(bp, trigger.mac()));
  });
  w.net.scheduler().run_for(netsim::seconds(120));

  // Lost pings correspond to the ~30 s forwarding-delay outage (150 of
  // 500), within slack; service recovered afterwards.
  EXPECT_GT(ping.stats().received, 300);
  EXPECT_LT(ping.stats().received, 420);
  for (auto& b : w.bridges) {
    auto* control = dynamic_cast<bridge::ControlSwitchlet*>(
        b->node().loader().find("bridge.control"));
    EXPECT_EQ(control->phase(), bridge::TransitionPhase::kValidated);
  }
}

}  // namespace
}  // namespace ab
