// TopologySweep: the grid harness must build each cell, converge it, drive
// the canned workload, and report consistent numbers.
#include "src/apps/scenario.h"

#include <gtest/gtest.h>

#include <set>

namespace ab::apps {
namespace {

TEST(TopologySweep, MakeGridIsTheCrossProduct) {
  const auto grid = TopologySweep::make_grid(
      {netsim::TopologyShape::kRing, netsim::TopologyShape::kLine}, {2, 4}, 1);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].label(), "ring-2x1");
  EXPECT_EQ(grid[1].label(), "ring-4x1");
  EXPECT_EQ(grid[2].label(), "line-2x1");
  EXPECT_EQ(grid[3].label(), "line-4x1");
}

TEST(TopologySweep, CellRunsToConvergenceWithTraffic) {
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kRing;
  spec.nodes = 3;
  spec.hosts_per_lan = 1;

  TopologySweep sweep;
  const SweepResult r = sweep.run_cell(spec);
  EXPECT_EQ(r.label, "ring-3x1");
  EXPECT_EQ(r.bridges, 3);
  EXPECT_EQ(r.lans, 3);
  EXPECT_EQ(r.hosts, 3);
  EXPECT_EQ(r.ports, 6);
  EXPECT_TRUE(r.stp_converged);
  EXPECT_EQ(r.blocked_ports, 1);
  EXPECT_EQ(r.pings_sent, 3);
  EXPECT_EQ(r.pings_answered, 3);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.frames_carried, 0u);
  EXPECT_GT(r.mac_entries, 0u);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.virtual_seconds, 50.0);  // 45 s convergence + 5 s traffic
}

TEST(TopologySweep, GridPreservesOrderAndFormats) {
  SweepOptions opts;
  opts.convergence_window = netsim::seconds(45);
  opts.probe_broadcasts = 2;
  TopologySweep sweep(opts);
  const auto cells = sweep.run_grid(TopologySweep::make_grid(
      {netsim::TopologyShape::kLine}, {1, 2}, 1));
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].label, "line-1x1");
  EXPECT_EQ(cells[1].label, "line-2x1");
  // Every cell is its own world: a line never blocks a port.
  for (const auto& c : cells) {
    EXPECT_TRUE(c.stp_converged);
    EXPECT_EQ(c.blocked_ports, 0);
    EXPECT_EQ(c.pings_answered, c.pings_sent);
  }

  const std::string table = TopologySweep::format_table(cells);
  EXPECT_NE(table.find("line-1x1"), std::string::npos);
  EXPECT_NE(table.find("line-2x1"), std::string::npos);

  const std::string json = TopologySweep::format_json(cells);
  EXPECT_NE(json.find("\"cell\": \"line-1x1\""), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"stp_converged\": true"), std::string::npos);
}

TEST(TopologySweep, TtcpWorkloadMovesBytesAcrossLans) {
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kRing;
  spec.nodes = 4;
  spec.hosts_per_lan = 1;

  TtcpStreamWorkload::Options wopts;
  wopts.streams = 2;
  wopts.bytes_per_stream = 32 * 1024;
  TtcpStreamWorkload ttcp(wopts);
  TopologySweep sweep;
  const SweepResult r = sweep.run_cell(spec, ttcp);

  EXPECT_EQ(r.workload, "ttcp-streams");
  EXPECT_TRUE(r.stp_converged);
  ASSERT_EQ(r.streams.size(), 2u);
  for (const StreamResult& s : r.streams) {
    EXPECT_EQ(s.bytes_sent, 32u * 1024u);
    // Lossless segments, generous window: every byte arrives.
    EXPECT_EQ(s.bytes_received, s.bytes_sent);
    EXPECT_DOUBLE_EQ(s.loss_fraction, 0.0);
    EXPECT_GT(s.goodput_mbps, 0.0);
    EXPECT_GT(s.datagrams, 0u);
  }
  EXPECT_GT(r.total_goodput_mbps(), 0.0);

  const std::string json = TopologySweep::format_json({r});
  EXPECT_NE(json.find("\"workload\": \"ttcp-streams\""), std::string::npos);
  EXPECT_NE(json.find("\"streams\": ["), std::string::npos);
  EXPECT_NE(json.find("\"goodput_mbps_total\""), std::string::npos);
}

TEST(TopologySweep, TtcpHubTargetedPlacementSinksOnTheHubLan) {
  // On a star, the hub segment (lan0 bridges every node) is the busiest;
  // hub-targeted placement must sink every stream there, with senders
  // drawn from the leaf LANs.
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kStar;
  spec.nodes = 4;
  spec.hosts_per_lan = 2;

  TtcpStreamWorkload::Options wopts;
  wopts.streams = 3;
  wopts.bytes_per_stream = 16 * 1024;
  wopts.placement = TtcpStreamWorkload::Placement::kHubTargeted;
  TtcpStreamWorkload ttcp(wopts);
  TopologySweep sweep;
  const SweepResult r = sweep.run_cell(spec, ttcp);

  EXPECT_TRUE(r.stp_converged);
  ASSERT_EQ(r.streams.size(), 3u);
  // The star's hub is lan0; its hosts are named host0_*.
  for (const StreamResult& s : r.streams) {
    const auto arrow = s.label.find(" -> ");
    ASSERT_NE(arrow, std::string::npos);
    const std::string sink = s.label.substr(arrow + 4);
    EXPECT_EQ(sink.rfind("host0_", 0), 0u) << s.label;
    EXPECT_NE(s.label.rfind("host0_", 0), 0u) << s.label;  // sender off-hub
    EXPECT_EQ(s.bytes_received, s.bytes_sent) << s.label;
  }
}

TEST(TopologySweep, TtcpAllPairsPlacementCoversDistinctPairs) {
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kRing;
  spec.nodes = 3;
  spec.hosts_per_lan = 1;

  TtcpStreamWorkload::Options wopts;
  wopts.streams = 6;  // two laps over 3 hosts: strides 1 then 2
  wopts.bytes_per_stream = 8 * 1024;
  wopts.placement = TtcpStreamWorkload::Placement::kAllPairs;
  TtcpStreamWorkload ttcp(wopts);
  TopologySweep sweep;
  const SweepResult r = sweep.run_cell(spec, ttcp);

  ASSERT_EQ(r.streams.size(), 6u);
  std::set<std::string> pairs;
  for (const StreamResult& s : r.streams) {
    pairs.insert(s.label);
    EXPECT_EQ(s.bytes_received, s.bytes_sent) << s.label;
  }
  // 3 hosts x 2 strides: all 6 ordered cross pairs, no repeats.
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(TopologySweep, CellRecordsInsertAccounting) {
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kLine;
  spec.nodes = 2;
  spec.hosts_per_lan = 1;
  TopologySweep sweep;
  const SweepResult r = sweep.run_cell(spec);
  EXPECT_GT(r.heap_inserts, 0u);
  // Batched transmit paths mean strictly fewer inserts than entries.
  EXPECT_GE(r.scheduled_entries, r.heap_inserts);
  EXPECT_GE(r.insert_reduction(), 1.0);
  const std::string json = TopologySweep::format_json({r});
  EXPECT_NE(json.find("\"heap_inserts\""), std::string::npos);
  EXPECT_NE(json.find("\"insert_reduction\""), std::string::npos);
}

TEST(TopologySweep, RolloutWorkloadDeploysToEveryBridgeInStages) {
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kLine;
  spec.nodes = 3;
  spec.hosts_per_lan = 1;

  SweepOptions opts;
  opts.build.netloader = true;
  TopologySweep sweep(opts);
  RolloutWorkload rollout;
  const SweepResult r = sweep.run_cell(spec, rollout);

  EXPECT_EQ(r.workload, "rollout");
  EXPECT_TRUE(r.stp_converged);
  ASSERT_EQ(r.rollout.size(), 3u);
  EXPECT_TRUE(r.rollout_ok());
  // The admin sits on lan0: stages grow with the line, and the plan runs
  // nearest-first.
  EXPECT_EQ(r.rollout[0].bridge, "bridge0");
  EXPECT_EQ(r.rollout[0].stage, 0);
  EXPECT_EQ(r.rollout[1].stage, 1);
  EXPECT_EQ(r.rollout[2].stage, 2);
  for (const RolloutStepResult& step : r.rollout) {
    EXPECT_GT(step.load_ms, 0.0);
    EXPECT_GE(step.attempts, 1);
    EXPECT_GT(step.bytes_pushed, 0u);
    // The monitor generation took over mid-traffic and saw frames.
    EXPECT_GT(step.frames_after_load, 0u);
  }
  // Background pings flowed while the rollout ran.
  EXPECT_GT(r.pings_sent, 0);
  EXPECT_GT(r.pings_answered, 0);

  const std::string json = TopologySweep::format_json({r});
  EXPECT_NE(json.find("\"rollout_ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"load_ms\""), std::string::npos);
}

TEST(TopologySweep, RolloutThatOutlastsTheWindowIsNotReportedOk) {
  // A traffic window too short for the whole plan: the unreached bridges
  // must appear as failed steps so rollout_ok() is false (a partially
  // deployed network is not a successful rollout).
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kLine;
  spec.nodes = 3;

  SweepOptions opts;
  opts.build.netloader = true;
  opts.traffic_window = netsim::microseconds(200);  // ~one ARP round trip
  TopologySweep sweep(opts);
  RolloutWorkload rollout;
  const SweepResult r = sweep.run_cell(spec, rollout);
  EXPECT_EQ(r.rollout.size(), 3u);  // every planned bridge is accounted for
  EXPECT_FALSE(r.rollout_ok());
}

TEST(TopologySweep, RolloutWorkloadRequiresNetloaders) {
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kLine;
  spec.nodes = 1;
  TopologySweep sweep;  // build.netloader defaults to false
  RolloutWorkload rollout;
  EXPECT_THROW((void)sweep.run_cell(spec, rollout), std::logic_error);
}

TEST(TopologySweep, StpOffMeasuresTheStorm) {
  // Without STP a 3-ring floods forever: the sweep must survive it (the
  // traffic window bounds the run) and report the loop clearly.
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kRing;
  spec.nodes = 3;

  SweepOptions opts;
  opts.build.stp = false;
  opts.convergence_window = netsim::seconds(1);
  opts.traffic_window = netsim::milliseconds(50);
  opts.probe_broadcasts = 1;
  opts.neighbor_pings = false;
  TopologySweep sweep(opts);
  const SweepResult r = sweep.run_cell(spec);
  EXPECT_FALSE(r.stp_converged);
  // One injected broadcast, hundreds of looped copies.
  EXPECT_GT(r.frames_carried, 100u);
}

netsim::TopologySpec small_star() {
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kStar;
  spec.nodes = 2;       // hub + 2 leaves = 3 LANs
  spec.hosts_per_lan = 8;
  return spec;
}

AggregateHostWorkload::Options small_aggregate_options() {
  AggregateHostWorkload::Options opts;
  opts.talkers_per_lan = 2;
  opts.background_per_lan = 4;
  opts.seed = 7;
  return opts;
}

TEST(AggregateHostWorkload, SameSeedSameCellIsBitIdentical) {
  // The aggregate model samples its background stations by seed; a rerun
  // of the identical cell must replay the identical simulation, counter
  // for counter -- determinism is what makes the bench columns and the
  // CI bounds meaningful.
  const netsim::TopologySpec spec = small_star();
  SweepResult runs[2];
  for (SweepResult& r : runs) {
    AggregateHostWorkload workload(small_aggregate_options());
    TopologySweep sweep;
    r = sweep.run_cell(spec, workload);
  }
  EXPECT_EQ(runs[0].frames_carried, runs[1].frames_carried);
  EXPECT_EQ(runs[0].bytes_carried, runs[1].bytes_carried);
  EXPECT_EQ(runs[0].events, runs[1].events);
  EXPECT_EQ(runs[0].heap_inserts, runs[1].heap_inserts);
  EXPECT_EQ(runs[0].scheduled_entries, runs[1].scheduled_entries);
  EXPECT_EQ(runs[0].pings_sent, runs[1].pings_sent);
  EXPECT_EQ(runs[0].pings_answered, runs[1].pings_answered);
  EXPECT_GT(runs[0].frames_carried, 0u);
  EXPECT_GT(runs[0].pings_answered, 0);
}

TEST(AggregateHostWorkload, MatchesTheMaterializedModelOnASmallCell) {
  // The acceptance claim behind the million-station cell: replaying a
  // background frame from the per-LAN generator NIC instead of the
  // station's own NIC changes NOTHING the simulation can observe -- the
  // frame carries the station's real MAC/IP, the generator is attached
  // first in both modes (identical receiver walks), and the gap keeps the
  // generator idle (no queueing skew). Same cell, same seed, both modes:
  // every shared counter must match bit for bit.
  const netsim::TopologySpec spec = small_star();
  SweepResult by_mode[2];
  for (int materialize = 0; materialize < 2; ++materialize) {
    AggregateHostWorkload::Options opts = small_aggregate_options();
    opts.materialize_background = materialize == 1;
    AggregateHostWorkload workload(opts);
    TopologySweep sweep;
    by_mode[materialize] = sweep.run_cell(spec, workload);
  }
  const SweepResult& aggregate = by_mode[0];
  const SweepResult& materialized = by_mode[1];
  EXPECT_EQ(aggregate.frames_carried, materialized.frames_carried);
  EXPECT_EQ(aggregate.bytes_carried, materialized.bytes_carried);
  EXPECT_EQ(aggregate.frames_lost, materialized.frames_lost);
  EXPECT_EQ(aggregate.events, materialized.events);
  EXPECT_EQ(aggregate.heap_inserts, materialized.heap_inserts);
  EXPECT_EQ(aggregate.scheduled_entries, materialized.scheduled_entries);
  EXPECT_EQ(aggregate.pings_sent, materialized.pings_sent);
  EXPECT_EQ(aggregate.pings_answered, materialized.pings_answered);
  ASSERT_EQ(aggregate.streams.size(), materialized.streams.size());
  for (std::size_t i = 0; i < aggregate.streams.size(); ++i) {
    EXPECT_EQ(aggregate.streams[i].bytes_received, materialized.streams[i].bytes_received);
  }
  // And the background actually ran: every LAN's sampled stations pinged.
  EXPECT_GT(aggregate.pings_answered, 0);
}

}  // namespace
}  // namespace ab::apps
