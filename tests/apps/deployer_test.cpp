// The administrator-side distribution tool: ordered delivery, retries,
// settle delays, and partial-failure reporting.
#include "src/apps/deployer.h"

#include <gtest/gtest.h>

#include "src/apps/ping.h"
#include "src/bridge/bridge_node.h"
#include "src/netsim/network.h"

namespace ab::apps {
namespace {

struct World {
  netsim::Network net;
  netsim::LanSegment* lan1;
  netsim::LanSegment* lan2;
  std::unique_ptr<bridge::BridgeNode> bridge;
  std::unique_ptr<stack::HostStack> admin;
  std::unique_ptr<Deployer> deployer;
  const stack::Ipv4Addr loader_ip{10, 0, 0, 10};

  World() {
    lan1 = &net.add_segment("lan1");
    lan2 = &net.add_segment("lan2");
    bridge::BridgeNodeConfig cfg;
    cfg.loader_ip = loader_ip;
    bridge = std::make_unique<bridge::BridgeNode>(net.scheduler(), cfg);
    bridge->add_port(net.add_nic("eth0", *lan1));
    bridge->add_port(net.add_nic("eth1", *lan2));
    bridge->load_netloader();

    stack::HostConfig ac;
    ac.ip = stack::Ipv4Addr(10, 0, 0, 100);
    admin = std::make_unique<stack::HostStack>(net.scheduler(),
                                               net.add_nic("admin", *lan1), ac);
    deployer = std::make_unique<Deployer>(net.scheduler(), *admin);
  }
};

TEST(Deployer, DeploysAPlanInOrder) {
  World w;
  std::vector<DeployResult> results;
  w.deployer->deploy(
      {
          {w.loader_ip, active::SwitchletImage::named("bridge.dumb"), {}},
          {w.loader_ip, active::SwitchletImage::named("bridge.learning"), {}},
      },
      [&](const std::vector<DeployResult>& r) { results = r; });
  EXPECT_TRUE(w.deployer->busy());
  w.net.scheduler().run_for(netsim::seconds(30));
  EXPECT_FALSE(w.deployer->busy());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[1].ok);
  EXPECT_EQ(results[0].module, "bridge.dumb");
  EXPECT_EQ(results[1].module, "bridge.learning");
  // The node is actually running the modules.
  EXPECT_NE(w.bridge->node().loader().find("bridge.dumb"), nullptr);
  EXPECT_NE(w.bridge->node().loader().find("bridge.learning"), nullptr);
}

TEST(Deployer, SettleDelayIsHonored) {
  World w;
  netsim::TimePoint finished{};
  DeployStep first{w.loader_ip, active::SwitchletImage::named("bridge.dumb"),
                   netsim::seconds(30)};
  DeployStep second{w.loader_ip, active::SwitchletImage::named("bridge.learning"),
                    {}};
  w.deployer->deploy({first, second}, [&](const std::vector<DeployResult>&) {
    finished = w.net.now();
  });
  w.net.scheduler().run_for(netsim::seconds(60));
  // The 30 s settle sits between the steps.
  EXPECT_GE(finished.time_since_epoch(), netsim::seconds(30));
}

TEST(Deployer, UnreachableNodeFailsAfterRetriesAndPlanContinues) {
  World w;
  std::vector<DeployResult> results;
  w.deployer->deploy(
      {
          {stack::Ipv4Addr(10, 0, 0, 99),  // nobody there
           active::SwitchletImage::named("bridge.dumb"),
           {}},
          {w.loader_ip, active::SwitchletImage::named("bridge.dumb"), {}},
      },
      [&](const std::vector<DeployResult>& r) { results = r; });
  w.net.scheduler().run_for(netsim::seconds(120));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].attempts, Deployer::kMaxAttempts);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_TRUE(results[1].ok);  // the plan carried on
}

TEST(Deployer, StepCallbackAndTimestampsMeasureLoadTime) {
  World w;
  std::vector<DeployResult> step_results;
  std::vector<DeployResult> final_results;
  w.deployer->deploy(
      {
          {w.loader_ip, active::SwitchletImage::named("bridge.dumb"), {}},
          {w.loader_ip, active::SwitchletImage::named("bridge.learning"), {}},
      },
      [&](const std::vector<DeployResult>& r) { final_results = r; },
      [&](const DeployResult& r) { step_results.push_back(r); });
  w.net.scheduler().run_for(netsim::seconds(30));
  ASSERT_EQ(step_results.size(), 2u);
  ASSERT_EQ(final_results.size(), 2u);
  for (const DeployResult& r : step_results) {
    EXPECT_TRUE(r.ok);
    // The TFTP exchange takes real virtual time; load_time measures it.
    EXPECT_GT(r.load_time(), netsim::Duration::zero());
    EXPECT_EQ(r.finished - r.started, r.load_time());
  }
  // Steps are strictly ordered: step 2 started after step 1 finished.
  EXPECT_GE(step_results[1].started, step_results[0].finished);
}

TEST(Deployer, RejectsConcurrentPlansAndNullCompletion) {
  World w;
  w.deployer->deploy({{w.loader_ip, active::SwitchletImage::named("bridge.dumb"), {}}},
                     [](const std::vector<DeployResult>&) {});
  EXPECT_THROW(w.deployer->deploy({}, [](const std::vector<DeployResult>&) {}),
               std::logic_error);
  w.net.scheduler().run_for(netsim::seconds(30));
  EXPECT_THROW(w.deployer->deploy({}, nullptr), std::invalid_argument);
}

TEST(Deployer, EmptyPlanCompletesImmediately) {
  World w;
  bool done = false;
  w.deployer->deploy({}, [&](const std::vector<DeployResult>& r) {
    done = true;
    EXPECT_TRUE(r.empty());
  });
  EXPECT_TRUE(done);
  EXPECT_FALSE(w.deployer->busy());
}

TEST(Deployer, DigestRejectionIsStillATransportSuccess) {
  // The deployer reports delivery; the *loader* refuses stale images. Both
  // facts must be visible.
  World w;
  active::SwitchletImage stale = active::SwitchletImage::named("bridge.dumb");
  stale.required_interface.bytes[0] ^= 0xFF;
  std::vector<DeployResult> results;
  w.deployer->deploy({{w.loader_ip, stale, {}}},
                     [&](const std::vector<DeployResult>& r) { results = r; });
  w.net.scheduler().run_for(netsim::seconds(30));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);  // the bytes arrived
  EXPECT_EQ(w.bridge->node().loader().find("bridge.dumb"), nullptr);
  EXPECT_EQ(w.bridge->node().loader().stats().rejected_digest, 1u);
}

}  // namespace
}  // namespace ab::apps
