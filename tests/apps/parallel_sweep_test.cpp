// The sharded parallel core's acceptance property: a sharded cell is
// OBSERVABLY IDENTICAL to the single-Network oracle -- same frames, bytes,
// pings, MAC tables, stream bytes -- and a sharded cell's results are a
// pure function of the cell, independent of thread count and repeatable
// run to run.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/apps/scenario.h"

namespace ab::apps {
namespace {

netsim::TopologySpec star_cell() {
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kStar;
  spec.nodes = 3;  // hub lan + 3 leaf lans, 3 bridges
  spec.hosts_per_lan = 2;
  return spec;
}

// The observable contract: everything a user of the sweep reads that does
// not depend on HOW the event loop was partitioned. Scheduler-internal
// counters (events, heap_inserts) are compared only between sharded runs
// -- splitting one delivery walk across replicas legitimately changes the
// event count against the oracle, never the traffic.
void expect_observables_equal(const SweepResult& a, const SweepResult& b,
                              const std::string& what) {
  EXPECT_EQ(a.frames_carried, b.frames_carried) << what;
  EXPECT_EQ(a.bytes_carried, b.bytes_carried) << what;
  EXPECT_EQ(a.frames_lost, b.frames_lost) << what;
  EXPECT_EQ(a.mac_entries, b.mac_entries) << what;
  EXPECT_EQ(a.pings_sent, b.pings_sent) << what;
  EXPECT_EQ(a.pings_answered, b.pings_answered) << what;
  EXPECT_EQ(a.stp_converged, b.stp_converged) << what;
  EXPECT_EQ(a.blocked_ports, b.blocked_ports) << what;
  EXPECT_EQ(a.forwarding_ports, b.forwarding_ports) << what;
  EXPECT_DOUBLE_EQ(a.virtual_seconds, b.virtual_seconds) << what;
  ASSERT_EQ(a.streams.size(), b.streams.size()) << what;
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(a.streams[i].label, b.streams[i].label) << what;
    EXPECT_EQ(a.streams[i].bytes_sent, b.streams[i].bytes_sent) << what;
    EXPECT_EQ(a.streams[i].bytes_received, b.streams[i].bytes_received) << what;
    EXPECT_EQ(a.streams[i].datagrams, b.streams[i].datagrams) << what;
    EXPECT_EQ(a.streams[i].retransmits, b.streams[i].retransmits) << what;
    EXPECT_EQ(a.streams[i].cwnd_final, b.streams[i].cwnd_final) << what;
  }
}

TEST(ParallelSweep, ShardedFloodPingMatchesOracleAtEveryThreadCount) {
  const netsim::TopologySpec spec = star_cell();

  TopologySweep oracle_sweep;  // defaults: single Network, one scheduler
  const SweepResult oracle = oracle_sweep.run_cell(spec);
  ASSERT_TRUE(oracle.stp_converged);
  ASSERT_EQ(oracle.pings_answered, oracle.pings_sent);
  ASSERT_GT(oracle.frames_carried, 0u);

  SweepResult reference;  // the threads=1 sharded run
  for (const int threads : {1, 2, 4, 8}) {
    SweepOptions opts;
    opts.shard_regions = 2;  // fixed partition; only the thread count varies
    opts.threads = threads;
    TopologySweep sweep(opts);
    const SweepResult sharded = sweep.run_cell(spec);

    expect_observables_equal(
        sharded, oracle, "threads=" + std::to_string(threads) + " vs oracle");
    if (threads == 1) {
      reference = sharded;
    } else {
      // Between sharded runs EVERYTHING must match, scheduler internals
      // included: the round/window structure is thread-count independent.
      expect_observables_equal(sharded, reference, "vs threads=1");
      EXPECT_EQ(sharded.events, reference.events) << "threads=" << threads;
      EXPECT_EQ(sharded.heap_inserts, reference.heap_inserts)
          << "threads=" << threads;
      EXPECT_EQ(sharded.scheduled_entries, reference.scheduled_entries)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelSweep, ShardedTtcpStreamsMatchOracle) {
  const netsim::TopologySpec spec = star_cell();

  TtcpStreamWorkload::Options wopts;
  wopts.streams = 2;
  wopts.bytes_per_stream = 32 * 1024;

  TtcpStreamWorkload oracle_ttcp(wopts);
  TopologySweep oracle_sweep;
  const SweepResult oracle = oracle_sweep.run_cell(spec, oracle_ttcp);
  ASSERT_EQ(oracle.streams.size(), 2u);
  for (const StreamResult& s : oracle.streams) {
    ASSERT_EQ(s.bytes_received, s.bytes_sent);  // lossless, generous window
  }

  for (const int threads : {2, 4}) {
    SweepOptions opts;
    opts.shard_regions = 2;
    opts.threads = threads;
    TtcpStreamWorkload ttcp(wopts);
    TopologySweep sweep(opts);
    const SweepResult sharded = sweep.run_cell(spec, ttcp);
    expect_observables_equal(sharded, oracle,
                             "ttcp threads=" + std::to_string(threads));
  }
}

TEST(ParallelSweep, ShardedTcpStreamsMatchOracleBitIdentically) {
  // TCP adds timers (RTO, TIME_WAIT) and feedback loops (cwnd clocks the
  // wire) on top of the UDP streams above, all running on per-host
  // schedulers. The sharded runs must still be a pure function of the
  // cell: frames, bytes, goodput, retransmit counters and the final
  // congestion window identical at every thread count and to the oracle.
  const netsim::TopologySpec spec = star_cell();

  TtcpStreamWorkload::Options wopts;
  wopts.streams = 2;
  wopts.bytes_per_stream = 32 * 1024;
  wopts.transport = TtcpStreamWorkload::Transport::kTcp;

  TtcpStreamWorkload oracle_ttcp(wopts);
  TopologySweep oracle_sweep;
  const SweepResult oracle = oracle_sweep.run_cell(spec, oracle_ttcp);
  ASSERT_EQ(oracle.streams.size(), 2u);
  for (const StreamResult& s : oracle.streams) {
    ASSERT_EQ(s.bytes_sent, 32u * 1024u) << s.label;
    ASSERT_EQ(s.bytes_received, s.bytes_sent) << s.label;  // lossless LANs
    ASSERT_EQ(s.retransmits, 0u) << s.label;
    ASSERT_GT(s.datagrams, 0u) << s.label;   // segments the sink received
    ASSERT_GT(s.cwnd_final, 0u) << s.label;  // connection really ran TCP
    ASSERT_GT(s.goodput_mbps, 0.0) << s.label;
  }

  SweepResult reference;  // the threads=1 sharded run
  for (const int threads : {1, 2, 4, 8}) {
    SweepOptions opts;
    opts.shard_regions = 2;
    opts.threads = threads;
    TtcpStreamWorkload ttcp(wopts);
    TopologySweep sweep(opts);
    const SweepResult sharded = sweep.run_cell(spec, ttcp);

    expect_observables_equal(
        sharded, oracle, "tcp threads=" + std::to_string(threads) + " vs oracle");
    ASSERT_EQ(sharded.streams.size(), oracle.streams.size());
    for (std::size_t i = 0; i < sharded.streams.size(); ++i) {
      // goodput is a double computed from sink timestamps; bit-identity
      // means EXACT equality, not near-equality.
      EXPECT_EQ(sharded.streams[i].goodput_mbps, oracle.streams[i].goodput_mbps)
          << sharded.streams[i].label << " threads=" << threads;
    }
    if (threads == 1) {
      reference = sharded;
    } else {
      expect_observables_equal(sharded, reference,
                               "tcp vs threads=1, threads=" +
                                   std::to_string(threads));
      EXPECT_EQ(sharded.events, reference.events) << "threads=" << threads;
      EXPECT_EQ(sharded.heap_inserts, reference.heap_inserts)
          << "threads=" << threads;
      EXPECT_EQ(sharded.scheduled_entries, reference.scheduled_entries)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelSweep, ShardedRingAgreesOnSteadyStateAndWithItself) {
  // Conservative windows preserve every event TIME but not the serial
  // oracle's global FIFO tiebreak: on a symmetric ring, two BPDUs reach a
  // boundary bridge at the exact same nanosecond during STP startup and the
  // injected one sorts after a local one where the oracle interleaved them
  // -- a couple of extra hello transmissions in the first 25us, nothing
  // after. So against the oracle this cell pins the steady-state
  // observables (streams, pings, tables, tree shape); between sharded runs
  // at different thread counts EVERYTHING must still match.
  netsim::TopologySpec spec;
  spec.shape = netsim::TopologyShape::kRing;
  spec.nodes = 4;
  spec.hosts_per_lan = 1;

  TtcpStreamWorkload::Options wopts;
  wopts.streams = 2;
  wopts.bytes_per_stream = 32 * 1024;

  TtcpStreamWorkload oracle_ttcp(wopts);
  TopologySweep oracle_sweep;
  const SweepResult oracle = oracle_sweep.run_cell(spec, oracle_ttcp);

  SweepResult reference;
  for (const int threads : {1, 2, 4}) {
    SweepOptions opts;
    opts.shard_regions = 2;
    opts.threads = threads;
    TtcpStreamWorkload ttcp(wopts);
    TopologySweep sweep(opts);
    const SweepResult sharded = sweep.run_cell(spec, ttcp);

    EXPECT_EQ(sharded.stp_converged, oracle.stp_converged);
    EXPECT_EQ(sharded.blocked_ports, oracle.blocked_ports);
    EXPECT_EQ(sharded.mac_entries, oracle.mac_entries);
    EXPECT_EQ(sharded.pings_sent, oracle.pings_sent);
    EXPECT_EQ(sharded.pings_answered, oracle.pings_answered);
    ASSERT_EQ(sharded.streams.size(), oracle.streams.size());
    for (std::size_t i = 0; i < sharded.streams.size(); ++i) {
      EXPECT_EQ(sharded.streams[i].label, oracle.streams[i].label);
      EXPECT_EQ(sharded.streams[i].bytes_received,
                oracle.streams[i].bytes_received);
      EXPECT_EQ(sharded.streams[i].datagrams, oracle.streams[i].datagrams);
    }

    if (threads == 1) {
      reference = sharded;
    } else {
      expect_observables_equal(sharded, reference,
                               "ring threads=" + std::to_string(threads));
      EXPECT_EQ(sharded.events, reference.events);
      EXPECT_EQ(sharded.heap_inserts, reference.heap_inserts);
      EXPECT_EQ(sharded.scheduled_entries, reference.scheduled_entries);
    }
  }
}

TEST(ParallelSweep, OneRegionShardedEqualsLegacyPathExactly) {
  // shard_regions=1 runs the sharded machinery -- builder, runner, context
  // -- on a single region. With no cut segments there is nothing the
  // partitioning could change, so even the scheduler-internal counters
  // must equal the legacy single-Network path's: the seed-stability anchor
  // that pins the new path to the old one.
  const netsim::TopologySpec spec = star_cell();

  TopologySweep legacy_sweep;
  const SweepResult legacy = legacy_sweep.run_cell(spec);

  SweepOptions opts;
  opts.shard_regions = 1;
  TopologySweep sweep(opts);
  const SweepResult sharded = sweep.run_cell(spec);

  expect_observables_equal(sharded, legacy, "1-region vs legacy");
  EXPECT_EQ(sharded.events, legacy.events);
  EXPECT_EQ(sharded.heap_inserts, legacy.heap_inserts);
  EXPECT_EQ(sharded.scheduled_entries, legacy.scheduled_entries);
  EXPECT_EQ(sharded.bridges, legacy.bridges);
  EXPECT_EQ(sharded.lans, legacy.lans);
  EXPECT_EQ(sharded.hosts, legacy.hosts);
  EXPECT_EQ(sharded.ports, legacy.ports);
}

TEST(ParallelSweep, ShardedRunsAreRepeatable) {
  // Same cell, same thread count, fresh sweep objects: the two runs must
  // agree on every counter (the seed-stability requirement the scaling
  // bench's in-run assertion builds on).
  const netsim::TopologySpec spec = star_cell();
  SweepResult runs[2];
  for (SweepResult& r : runs) {
    SweepOptions opts;
    opts.shard_regions = 2;
    opts.threads = 2;
    TopologySweep sweep(opts);
    r = sweep.run_cell(spec);
  }
  expect_observables_equal(runs[0], runs[1], "repeat run");
  EXPECT_EQ(runs[0].events, runs[1].events);
  EXPECT_EQ(runs[0].heap_inserts, runs[1].heap_inserts);
  EXPECT_EQ(runs[0].scheduled_entries, runs[1].scheduled_entries);
}

TEST(ParallelSweep, SingleNetworkOnlyWorkloadsRejectShardedCells) {
  // Staged rollouts reach for the global Network; until they are taught
  // shard ownership they must refuse loudly, not corrupt silently. The
  // message is compared against the constant the refusal actually throws
  // (kSingleNetworkOnlyMessage) so workloads graduating off the refusal --
  // as the aggregate workload has -- shrink this test instead of breaking
  // it, while the text itself stays pinned where it is defined: it is the
  // only thing a user sees when a sweep config quietly combined a
  // single-Network workload with shard_regions > 0.
  const netsim::TopologySpec spec = star_cell();
  SweepOptions opts;
  opts.shard_regions = 2;
  opts.build.netloader = true;  // what RolloutWorkload needs, so the throw
                                // below is about sharding, not netloaders

  RolloutWorkload rollout;
  TopologySweep sweep(opts);
  try {
    (void)sweep.run_cell(spec, rollout);
    FAIL() << "RolloutWorkload must refuse a sharded cell";
  } catch (const std::logic_error& e) {
    EXPECT_EQ(std::string(e.what()), kSingleNetworkOnlyMessage) << "RolloutWorkload";
  }
}

TEST(ParallelSweep, ShardedAggregateMatchesOracleBitIdentically) {
  // The aggregate workload partitioned across regions -- per-LAN generator
  // NICs on their owning shard, talkers pinging on per-host clocks, the
  // ttcp stream riding cut-LAN mailboxes -- must reproduce the
  // single-Network oracle's traffic exactly on a tie-free cell, at every
  // thread count, and sharded runs must agree with each other on
  // scheduler internals too.
  netsim::TopologySpec spec = star_cell();
  spec.hosts_per_lan = 8;  // room for talkers AND a background sample

  AggregateHostWorkload::Options wopts;
  wopts.talkers_per_lan = 2;
  wopts.background_per_lan = 4;
  wopts.seed = 7;

  AggregateHostWorkload oracle_aggregate(wopts);
  TopologySweep oracle_sweep;
  const SweepResult oracle = oracle_sweep.run_cell(spec, oracle_aggregate);
  ASSERT_GT(oracle.pings_sent, 0);
  ASSERT_EQ(oracle.pings_answered, oracle.pings_sent);
  ASSERT_EQ(oracle.streams.size(), 1u);
  ASSERT_EQ(oracle.streams[0].bytes_received, oracle.streams[0].bytes_sent);
  ASSERT_GT(oracle.mac_entries, 0u);

  SweepResult reference;  // the threads=1 sharded run
  for (const int threads : {1, 2, 4, 8}) {
    SweepOptions opts;
    opts.shard_regions = 2;
    opts.threads = threads;
    AggregateHostWorkload aggregate(wopts);
    TopologySweep sweep(opts);
    const SweepResult sharded = sweep.run_cell(spec, aggregate);

    expect_observables_equal(
        sharded, oracle,
        "aggregate threads=" + std::to_string(threads) + " vs oracle");
    if (threads == 1) {
      reference = sharded;
    } else {
      expect_observables_equal(sharded, reference,
                               "aggregate vs threads=1, threads=" +
                                   std::to_string(threads));
      EXPECT_EQ(sharded.events, reference.events) << "threads=" << threads;
      EXPECT_EQ(sharded.heap_inserts, reference.heap_inserts)
          << "threads=" << threads;
      EXPECT_EQ(sharded.scheduled_entries, reference.scheduled_entries)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelSweep, ShardedAggregateBackgroundReplayIsSeedStable) {
  // The background sample is drawn by ONE seeded RNG walking LANs in
  // global order, so the set of speaking stations is a pure function of
  // the seed -- not of the partition, and not of whether the frames are
  // replayed by the generator or clocked out by materialized stations.
  netsim::TopologySpec spec = star_cell();
  spec.hosts_per_lan = 8;

  AggregateHostWorkload::Options wopts;
  wopts.talkers_per_lan = 2;
  wopts.background_per_lan = 4;
  wopts.seed = 21;

  SweepOptions opts;
  opts.shard_regions = 2;
  opts.threads = 2;

  // Same seed, fresh sweeps: identical everything.
  SweepResult runs[2];
  for (SweepResult& r : runs) {
    AggregateHostWorkload aggregate(wopts);
    TopologySweep sweep(opts);
    r = sweep.run_cell(spec, aggregate);
  }
  expect_observables_equal(runs[0], runs[1], "aggregate same-seed repeat");
  EXPECT_EQ(runs[0].events, runs[1].events);
  EXPECT_EQ(runs[0].heap_inserts, runs[1].heap_inserts);

  // Pre-encoded replay vs fully materialized stations: the sample and the
  // wire bytes must agree, sharded exactly like the single-Network
  // equivalence pinned in sweep_test.cpp.
  AggregateHostWorkload::Options mat = wopts;
  mat.materialize_background = true;
  AggregateHostWorkload materialized(mat);
  TopologySweep mat_sweep(opts);
  const SweepResult full = mat_sweep.run_cell(spec, materialized);
  EXPECT_EQ(full.frames_carried, runs[0].frames_carried);
  EXPECT_EQ(full.bytes_carried, runs[0].bytes_carried);
  EXPECT_EQ(full.pings_sent, runs[0].pings_sent);
  EXPECT_EQ(full.pings_answered, runs[0].pings_answered);
  EXPECT_EQ(full.mac_entries, runs[0].mac_entries);
}

TEST(ParallelSweep, ForkedGridMatchesInProcessGrid) {
  // Fork-per-cell must be a pure execution-strategy change: same cells,
  // same order, same traffic numbers as the in-process loop. (On non-Linux
  // builds fork_cells falls back to the in-process loop, so the test still
  // holds trivially.)
  const auto grid = TopologySweep::make_grid(
      {netsim::TopologyShape::kLine}, {1, 2}, 1);

  TopologySweep in_process;
  const auto serial = in_process.run_grid(grid);

  SweepOptions opts;
  opts.fork_cells = true;
  opts.max_parallel_cells = 2;
  TopologySweep forked_sweep(opts);
  const auto forked = forked_sweep.run_grid(grid);

  ASSERT_EQ(forked.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(forked[i].label, serial[i].label);
    EXPECT_EQ(forked[i].workload, serial[i].workload);
    expect_observables_equal(forked[i], serial[i], forked[i].label);
    EXPECT_EQ(forked[i].events, serial[i].events);
    EXPECT_EQ(forked[i].bridges, serial[i].bridges);
    EXPECT_EQ(forked[i].hosts, serial[i].hosts);
#if defined(__linux__)
    // Each forked cell reports its own process's peak, not a predecessor's.
    EXPECT_GT(forked[i].peak_rss_bytes, 0u);
#endif
  }
}

}  // namespace
}  // namespace ab::apps
