// The config-driven scenario runner: grammar, semantics, and an end-to-end
// run with measurements.
#include "src/apps/scenario.h"

#include <gtest/gtest.h>

#include <fstream>

namespace ab::apps {
namespace {

TEST(Scenario, MinimalBridgedTopologyRuns) {
  ScenarioRunner runner;
  const auto report = runner.run_text(R"(
# two LANs joined by an active bridge
segment lan1
segment lan2
bridge b0 lan1 lan2 modules=dumb,learning
host alpha lan1 10.0.0.1
host beta lan2 10.0.0.2
ping alpha beta count=3 size=64 at=0
run 5
)");
  ASSERT_TRUE(report.has_value()) << report.error();
  EXPECT_NE(report.value().find("3/3 replies"), std::string::npos);
  EXPECT_NE(report.value().find("bridge b0"), std::string::npos);
  EXPECT_NE(runner.find_host("alpha"), nullptr);
  EXPECT_NE(runner.find_bridge("b0"), nullptr);
  EXPECT_EQ(runner.find_host("nobody"), nullptr);
}

TEST(Scenario, SpanningTreeModulesNeedTheConfigurationPhase) {
  ScenarioRunner runner;
  const auto report = runner.run_text(R"(
segment lan1
segment lan2
bridge b0 lan1 lan2 modules=dumb,learning,ieee
host alpha lan1 10.0.0.1
host beta lan2 10.0.0.2
run 40
ping alpha beta count=2 at=0
run 5
)");
  ASSERT_TRUE(report.has_value()) << report.error();
  EXPECT_NE(report.value().find("2/2 replies"), std::string::npos);
}

TEST(Scenario, TtcpMeasurementReportsThroughput) {
  ScenarioRunner runner;
  const auto report = runner.run_text(R"(
segment lan1
segment lan2
bridge b0 lan1 lan2 cost=repeater modules=dumb,learning
host alpha lan1 10.0.0.1
host beta lan2 10.0.0.2
ping alpha beta count=1 at=0       # primes ARP
ttcp alpha beta bytes=256K write=1024 at=2
run 60
)");
  ASSERT_TRUE(report.has_value()) << report.error();
  EXPECT_NE(report.value().find("262144/262144 bytes"), std::string::npos);
}

TEST(Scenario, MultitreeModuleLoads) {
  ScenarioRunner runner;
  const auto report = runner.run_text(R"(
segment lan1
segment lan2
bridge b0 lan1 lan2 modules=dumb,multitree
run 35
)");
  ASSERT_TRUE(report.has_value()) << report.error();
  EXPECT_NE(report.value().find("bridge.multitree"), std::string::npos);
}

TEST(Scenario, SegmentOptionsApply) {
  ScenarioRunner runner;
  const auto report = runner.run_text(R"(
segment slow rate=10e6 loss=0.0
host a slow 10.0.0.1
host b slow 10.0.0.2
ping a b count=2 at=0
run 3
)");
  ASSERT_TRUE(report.has_value()) << report.error();
  ASSERT_NE(runner.network().find_segment("slow"), nullptr);
  EXPECT_EQ(runner.network().find_segment("slow")->config().bit_rate, 10e6);
}

TEST(Scenario, ErrorsNameTheLine) {
  ScenarioRunner runner;
  const auto report = runner.run_text("segment lan1\nbogus directive here\n");
  ASSERT_FALSE(report.has_value());
  EXPECT_NE(report.error().find("line 2"), std::string::npos);
  EXPECT_NE(report.error().find("bogus"), std::string::npos);
}

TEST(Scenario, SemanticErrorsAreCaught) {
  struct Case {
    const char* config;
    const char* expect;
  };
  const Case cases[] = {
      {"bridge b0 nowhere nowhere2\n", "unknown segment"},
      {"segment l\nhost h l 999.1.1.1\n", "bad IP"},
      {"segment l\nhost h l 10.0.0.1\nhost h l 10.0.0.2\n", "duplicate host"},
      {"segment l\nsegment l\n", "duplicate segment"},
      {"segment a\nsegment b\nbridge x a b cost=warp\n", "unknown cost"},
      {"segment a\nsegment b\nbridge x a b modules=quantum\n", "unknown module"},
      {"segment a\nping x y\n", "unknown host"},
      {"run fast\n", "bad number"},
      {"segment a\npcap a /no/such/dir/x.pcap\n", "cannot open"},
  };
  for (const Case& c : cases) {
    ScenarioRunner runner;
    const auto report = runner.run_text(c.config);
    ASSERT_FALSE(report.has_value()) << c.config;
    EXPECT_NE(report.error().find(c.expect), std::string::npos)
        << c.config << " -> " << report.error();
  }
}

TEST(Scenario, CommentsAndBlankLinesIgnored) {
  ScenarioRunner runner;
  const auto report = runner.run_text("\n\n# nothing but comments\n   \n");
  ASSERT_TRUE(report.has_value());
}

TEST(Scenario, PcapFileIsWritten) {
  ScenarioRunner runner;
  const std::string path = ::testing::TempDir() + "/scenario.pcap";
  const auto report = runner.run_text("segment l\npcap l " + path +
                                      "\n"
                                      "host a l 10.0.0.1\nhost b l 10.0.0.2\n"
                                      "ping a b count=1 at=0\nrun 2\n");
  ASSERT_TRUE(report.has_value()) << report.error();
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.good());
  EXPECT_GT(in.tellg(), 24);  // header + at least one record
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ab::apps
