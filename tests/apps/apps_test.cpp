// The measurement apps: repeater forwarding, ping RTT accounting, ttcp
// throughput accounting -- the instruments the benches rely on.
#include <gtest/gtest.h>

#include "src/apps/ping.h"
#include "src/apps/repeater.h"
#include "src/apps/ttcp.h"
#include "tests/bridge/bridge_test_util.h"

namespace ab::apps {
namespace {

struct RepeaterFixture {
  netsim::Network net;
  netsim::LanSegment* lan1;
  netsim::LanSegment* lan2;
  std::unique_ptr<BufferedRepeater> repeater;
  std::unique_ptr<stack::HostStack> host_a;
  std::unique_ptr<stack::HostStack> host_b;

  explicit RepeaterFixture(netsim::CostModel cost = netsim::CostModel::ideal()) {
    lan1 = &net.add_segment("lan1");
    lan2 = &net.add_segment("lan2");
    auto& r1 = net.add_nic("rep0", *lan1);
    auto& r2 = net.add_nic("rep1", *lan2);
    repeater = std::make_unique<BufferedRepeater>(net.scheduler(), r1, r2, cost);
    stack::HostConfig ha;
    ha.ip = stack::Ipv4Addr(10, 0, 0, 1);
    host_a = std::make_unique<stack::HostStack>(net.scheduler(),
                                                net.add_nic("hostA", *lan1), ha);
    stack::HostConfig hb;
    hb.ip = stack::Ipv4Addr(10, 0, 0, 2);
    host_b = std::make_unique<stack::HostStack>(net.scheduler(),
                                                net.add_nic("hostB", *lan2), hb);
  }
};

TEST(BufferedRepeater, ForwardsBothDirections) {
  RepeaterFixture f;
  PingApp ping(f.net.scheduler(), *f.host_a, f.host_b->ip());
  ping.send_one(64);
  f.net.scheduler().run();
  EXPECT_EQ(ping.stats().received, 1);
  EXPECT_GT(f.repeater->forwarded(), 0u);
}

TEST(BufferedRepeater, CostModelAddsLatency) {
  RepeaterFixture ideal;
  RepeaterFixture costly(netsim::CostModel::c_repeater());
  PingApp ping_ideal(ideal.net.scheduler(), *ideal.host_a, ideal.host_b->ip());
  PingApp ping_costly(costly.net.scheduler(), *costly.host_a, costly.host_b->ip());
  ping_ideal.send_one(100);
  ping_costly.send_one(100);
  ideal.net.scheduler().run();
  costly.net.scheduler().run();
  ASSERT_EQ(ping_ideal.stats().received, 1);
  ASSERT_EQ(ping_costly.stats().received, 1);
  EXPECT_GT(ping_costly.stats().avg(), ping_ideal.stats().avg());
}

TEST(PingApp, TracksRttStatistics) {
  RepeaterFixture f;
  PingApp ping(f.net.scheduler(), *f.host_a, f.host_b->ip());
  ping.run(5, 64, netsim::milliseconds(100));
  f.net.scheduler().run();
  EXPECT_EQ(ping.stats().sent, 5);
  EXPECT_EQ(ping.stats().received, 5);
  EXPECT_GT(ping.stats().avg(), netsim::Duration::zero());
  EXPECT_LE(ping.stats().min, ping.stats().avg());
  EXPECT_LE(ping.stats().avg(), ping.stats().max);
  EXPECT_EQ(ping.stats().loss_fraction(), 0.0);
  ASSERT_TRUE(ping.first_reply_at().has_value());
}

TEST(PingApp, CountsLossWhenTargetAbsent) {
  RepeaterFixture f;
  PingApp ping(f.net.scheduler(), *f.host_a, stack::Ipv4Addr(10, 0, 0, 99));
  ping.run(3, 64, netsim::milliseconds(10));
  f.net.scheduler().run();
  EXPECT_EQ(ping.stats().sent, 3);
  EXPECT_EQ(ping.stats().received, 0);
  EXPECT_EQ(ping.stats().loss_fraction(), 1.0);
}

TEST(Ttcp, MovesAllBytesAndMeasures) {
  RepeaterFixture f;
  TtcpSink sink(f.net.scheduler(), *f.host_b, 5001);
  TtcpConfig cfg;
  cfg.destination = f.host_b->ip();
  cfg.write_size = 1024;
  cfg.total_bytes = 64 * 1024;
  // Prime ARP so the blast does not race resolution.
  PingApp ping(f.net.scheduler(), *f.host_a, f.host_b->ip());
  ping.send_one(32);
  f.net.scheduler().run();

  TtcpSender sender(*f.host_a, cfg);
  sender.start();
  f.net.scheduler().run();
  EXPECT_EQ(sender.writes_issued(), 64u);
  EXPECT_EQ(sink.bytes_received(), cfg.total_bytes);
  EXPECT_EQ(sink.datagrams_received(), 64u);
  EXPECT_GT(sink.throughput_mbps(), 0.0);
  EXPECT_GT(sink.datagrams_per_second(), 0.0);
}

TEST(Ttcp, LargeWritesFragmentAndStillArrive) {
  RepeaterFixture f;
  f.host_a->nic().set_tx_queue_limit(100000);
  TtcpSink sink(f.net.scheduler(), *f.host_b, 5001);
  TtcpConfig cfg;
  cfg.destination = f.host_b->ip();
  cfg.write_size = 8192;  // the paper's write size
  cfg.total_bytes = 256 * 1024;
  PingApp ping(f.net.scheduler(), *f.host_a, f.host_b->ip());
  ping.send_one(32);
  f.net.scheduler().run();

  TtcpSender sender(*f.host_a, cfg);
  sender.start();
  f.net.scheduler().run();
  EXPECT_EQ(sink.bytes_received(), cfg.total_bytes);
  EXPECT_GT(f.host_a->stats().fragments_sent, sender.writes_issued());
}

TEST(Ttcp, ThroughTheActiveBridgeIsSlowerThanRepeater) {
  // The core Figure 10 relationship, as a correctness property: bridge
  // throughput < repeater throughput for the same workload.
  auto run_one = [](bool use_bridge) {
    bridge::testing::TwoLanFixture f(
        use_bridge
            ? [] {
                bridge::BridgeNodeConfig c;
                c.cost = netsim::CostModel::caml_bridge();
                return c;
              }()
            : bridge::BridgeNodeConfig{});
    if (use_bridge) {
      f.bridge->load_dumb();
      f.bridge->load_learning();
    }
    std::unique_ptr<BufferedRepeater> repeater;
    if (!use_bridge) {
      auto& r1 = f.net.add_nic("rep0", *f.lan_a);
      auto& r2 = f.net.add_nic("rep1", *f.lan_b);
      repeater = std::make_unique<BufferedRepeater>(f.net.scheduler(), r1, r2);
    }
    f.host_a->nic().set_tx_queue_limit(100000);
    TtcpSink sink(f.net.scheduler(), *f.host_b, 5001);
    PingApp prime(f.net.scheduler(), *f.host_a, f.host_b->ip());
    prime.send_one(32);
    f.net.scheduler().run_for(netsim::seconds(2));
    TtcpConfig cfg;
    cfg.destination = f.host_b->ip();
    cfg.write_size = 1024;
    cfg.total_bytes = 128 * 1024;
    TtcpSender sender(*f.host_a, cfg);
    sender.start();
    f.net.scheduler().run_for(netsim::seconds(30));
    return sink.throughput_mbps();
  };
  const double repeater_mbps = run_one(false);
  const double bridge_mbps = run_one(true);
  ASSERT_GT(repeater_mbps, 0.0);
  ASSERT_GT(bridge_mbps, 0.0);
  EXPECT_LT(bridge_mbps, repeater_mbps);
}

TEST(Ttcp, RejectsBadConfig) {
  RepeaterFixture f;
  TtcpConfig zero_write;
  zero_write.destination = f.host_b->ip();
  zero_write.write_size = 0;
  EXPECT_THROW(TtcpSender(*f.host_a, zero_write), std::invalid_argument);
  TtcpConfig no_dst;
  EXPECT_THROW(TtcpSender(*f.host_a, no_dst), std::invalid_argument);
}

}  // namespace
}  // namespace ab::apps
