#include "src/active/func_registry.h"

#include <gtest/gtest.h>

namespace ab::active {
namespace {

TEST(FuncRegistry, RegisterAndEval) {
  FuncRegistry reg;
  reg.register_func("echo", [](const std::string& arg) { return arg; });
  const auto result = reg.eval("echo", "hello");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value(), "hello");
}

TEST(FuncRegistry, EvalUnknownKeyIsAnError) {
  FuncRegistry reg;
  const auto result = reg.eval("missing");
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("missing"), std::string::npos);
}

TEST(FuncRegistry, ReRegistrationReplaces) {
  // A reloaded switchlet re-registers its entry points.
  FuncRegistry reg;
  reg.register_func("f", [](const std::string&) { return std::string("old"); });
  reg.register_func("f", [](const std::string&) { return std::string("new"); });
  EXPECT_EQ(reg.eval("f").value(), "new");
}

TEST(FuncRegistry, UnregisterRemoves) {
  FuncRegistry reg;
  reg.register_func("f", [](const std::string&) { return std::string(); });
  EXPECT_TRUE(reg.has("f"));
  reg.unregister_func("f");
  EXPECT_FALSE(reg.has("f"));
  EXPECT_FALSE(reg.eval("f").has_value());
}

TEST(FuncRegistry, KeysAreSorted) {
  FuncRegistry reg;
  reg.register_func("zeta", [](const std::string&) { return std::string(); });
  reg.register_func("alpha", [](const std::string&) { return std::string(); });
  reg.register_func("mid", [](const std::string&) { return std::string(); });
  const auto keys = reg.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "mid");
  EXPECT_EQ(keys[2], "zeta");
}

TEST(FuncRegistry, NullFunctionRejected) {
  FuncRegistry reg;
  EXPECT_THROW(reg.register_func("bad", nullptr), std::invalid_argument);
}

TEST(FuncRegistry, DefaultArgumentIsEmptyString) {
  FuncRegistry reg;
  reg.register_func("len", [](const std::string& arg) {
    return std::to_string(arg.size());
  });
  EXPECT_EQ(reg.eval("len").value(), "0");
}

}  // namespace
}  // namespace ab::active
