#include "src/active/ports.h"

#include <gtest/gtest.h>

#include "src/netsim/network.h"

namespace ab::active {
namespace {

struct Fixture {
  netsim::Network net;
  netsim::LanSegment* lan;
  netsim::Nic* eth0;
  netsim::Nic* eth1;
  PortTable table;

  Fixture() : table(net.scheduler()) {
    lan = &net.add_segment("lan");
    eth0 = &net.add_nic("eth0", *lan);
    eth1 = &net.add_nic("eth1", *lan);
    table.add_interface(*eth0);
    table.add_interface(*eth1);
  }
};

Packet make_packet(PortId ingress) {
  Packet p;
  p.wire = ether::Frame::ethernet2(ether::MacAddress::broadcast(),
                                   ether::MacAddress::local(9, 9),
                                   ether::EtherType::kExperimental, {1, 2, 3});
  p.ingress = ingress;
  return p;
}

TEST(PortTable, BindInClaimsAndSetsPromiscuous) {
  Fixture f;
  EXPECT_FALSE(f.eth0->promiscuous());
  InputPort& in = f.table.bind_in("eth0");
  EXPECT_EQ(in.name(), "eth0");
  EXPECT_TRUE(f.eth0->promiscuous());
  EXPECT_TRUE(f.table.is_bound_in(in.id()));
  EXPECT_EQ(f.table.bound_in_count(), 1u);
}

TEST(PortTable, FirstBindWinsOthersFail) {
  // The paper: "the first switchlet to bind to a given port succeeds and
  // all others fail."
  Fixture f;
  f.table.bind_in("eth0");
  EXPECT_THROW(f.table.bind_in("eth0"), AlreadyBound);
  f.table.bind_out("eth0");
  EXPECT_THROW(f.table.bind_out("eth0"), AlreadyBound);
}

TEST(PortTable, BindUnknownInterfaceThrows) {
  Fixture f;
  EXPECT_THROW(f.table.bind_in("eth9"), NoInterface);
  EXPECT_THROW(f.table.bind_out("eth9"), NoInterface);
}

TEST(PortTable, UnbindAllowsRebindAndLeavesPromiscuous) {
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  const PortId id = in.id();
  f.table.unbind_in(id);
  EXPECT_FALSE(f.eth0->promiscuous());
  EXPECT_FALSE(f.table.is_bound_in(id));
  EXPECT_NO_THROW(f.table.bind_in("eth0"));
}

TEST(PortTable, GetIportBindsNextAvailable) {
  Fixture f;
  InputPort& a = f.table.get_iport();
  InputPort& b = f.table.get_iport();
  EXPECT_NE(a.id(), b.id());
  EXPECT_THROW(f.table.get_iport(), NoInterface);  // both taken
}

TEST(PortTable, GetOportBindsNextAvailable) {
  Fixture f;
  OutputPort& a = f.table.get_oport();
  OutputPort& b = f.table.get_oport();
  EXPECT_NE(a.id(), b.id());
  EXPECT_THROW(f.table.get_oport(), NoInterface);
}

TEST(PortTable, IportToOportCrossesSides) {
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  EXPECT_THROW(f.table.iport_to_oport(in), NoInterface);  // out not bound yet
  OutputPort& out = f.table.bind_out("eth0");
  EXPECT_EQ(&f.table.iport_to_oport(in), &out);
}

TEST(PortTable, DuplicateInterfaceNameRejected) {
  Fixture f;
  netsim::Nic& dup = f.net.add_nic("eth0", *f.lan);
  EXPECT_THROW(f.table.add_interface(dup), std::invalid_argument);
}

TEST(InputPort, QueueModePullsInOrder) {
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  EXPECT_FALSE(in.pkts_waiting());
  EXPECT_FALSE(in.next_packet().has_value());
  f.table.deliver_to_port(in.id(), make_packet(in.id()));
  f.table.deliver_to_port(in.id(), make_packet(in.id()));
  EXPECT_TRUE(in.pkts_waiting());
  EXPECT_TRUE(in.next_packet().has_value());
  EXPECT_TRUE(in.next_packet().has_value());
  EXPECT_FALSE(in.pkts_waiting());
}

TEST(InputPort, HandlerModeBypassesQueueAndDrainsBacklog) {
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  f.table.deliver_to_port(in.id(), make_packet(in.id()));  // backlog
  int got = 0;
  in.set_handler([&](const Packet&) { ++got; });
  EXPECT_EQ(got, 1);  // backlog drained on install
  f.table.deliver_to_port(in.id(), make_packet(in.id()));
  EXPECT_EQ(got, 2);
  EXPECT_FALSE(in.pkts_waiting());
}

TEST(InputPort, QueueOverflowCountsDrops) {
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  for (int i = 0; i < 2000; ++i) f.table.deliver_to_port(in.id(), make_packet(in.id()));
  EXPECT_GT(f.table.rx_queue_drops(), 0u);
}

TEST(OutputPort, SendTransmitsOnTheNic) {
  Fixture f;
  OutputPort& out = f.table.bind_out("eth0");
  EXPECT_TRUE(out.ready_to_send());
  int got = 0;
  f.eth1->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  out.send(ether::Frame::ethernet2(f.eth1->mac(), f.eth0->mac(),
                                   ether::EtherType::kExperimental, {1}));
  f.net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(PortTable, SendOnBypassesOutputBindings) {
  Fixture f;
  int got = 0;
  f.eth1->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  // No output bind exists; the loader-infrastructure path still sends.
  f.table.send_on(0, ether::Frame::ethernet2(f.eth1->mac(), f.eth0->mac(),
                                             ether::EtherType::kExperimental, {1}));
  f.net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(PortTable, DeliverToUnboundPortIsANoop) {
  Fixture f;
  f.table.deliver_to_port(0, make_packet(0));  // must not crash
  EXPECT_EQ(f.table.rx_queue_drops(), 0u);
}

}  // namespace
}  // namespace ab::active
