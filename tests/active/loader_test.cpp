// Switchlet image codec + loader lifecycle + the MD5 interface-digest check
// (the paper's link-time signature mismatch).
#include "src/active/loader.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/active/image.h"
#include "src/active/node.h"
#include "src/netsim/network.h"

namespace ab::active {
namespace {

/// A minimal observable switchlet.
class ProbeSwitchlet final : public Switchlet {
 public:
  explicit ProbeSwitchlet(std::string name = "probe") : name_(std::move(name)) {}

  std::string_view name() const override { return name_; }

  void start(SafeEnv& env) override {
    ++starts;
    env.funcs().register_func(name_ + ".ping",
                              [](const std::string&) { return std::string("pong"); });
  }
  void stop() override { ++stops; }
  void suspend() override { ++suspends; }
  void resume() override { ++resumes; }

  int starts = 0, stops = 0, suspends = 0, resumes = 0;

 private:
  std::string name_;
};

/// A switchlet whose start() throws (a broken module).
class FaultySwitchlet final : public Switchlet {
 public:
  std::string_view name() const override { return "faulty"; }
  void start(SafeEnv&) override { throw std::runtime_error("boom"); }
  void stop() override {}
};

struct Fixture {
  netsim::Network net;
  ActiveNode node;
  Fixture() : node(net.scheduler()) {}
};

TEST(SwitchletImage, EncodeDecodeRoundTrip) {
  SwitchletImage img = SwitchletImage::named("bridge.dumb");
  const auto back = SwitchletImage::decode(img.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, ImageKind::kNamed);
  EXPECT_EQ(back->name, "bridge.dumb");
  EXPECT_EQ(back->required_interface, SafeEnv::interface_digest());
  EXPECT_TRUE(back->payload.empty());
}

TEST(SwitchletImage, NativeImageCarriesPayload) {
  SwitchletImage img = SwitchletImage::native("plug", {1, 2, 3, 4});
  const auto back = SwitchletImage::decode(img.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, ImageKind::kNative);
  EXPECT_EQ(back->payload, (util::ByteBuffer{1, 2, 3, 4}));
}

TEST(SwitchletImage, DecodeRejectsGarbage) {
  EXPECT_FALSE(SwitchletImage::decode(util::ByteBuffer{}).has_value());
  EXPECT_FALSE(SwitchletImage::decode(util::to_bytes("not an image at all")).has_value());
  // Bad kind byte.
  SwitchletImage img = SwitchletImage::named("x");
  util::ByteBuffer wire = img.encode();
  wire[6] = 99;
  EXPECT_FALSE(SwitchletImage::decode(wire).has_value());
  // Empty name.
  SwitchletImage anon = SwitchletImage::named("x");
  anon.name.clear();
  EXPECT_FALSE(SwitchletImage::decode(anon.encode()).has_value());
  // Native without payload.
  SwitchletImage bare = SwitchletImage::native("x", {1});
  bare.payload.clear();
  EXPECT_FALSE(SwitchletImage::decode(bare.encode()).has_value());
}

TEST(SwitchletLoader, LoadsNamedImageFromRegistry) {
  Fixture f;
  f.node.loader().registry().add("probe",
                                 [] { return std::make_unique<ProbeSwitchlet>(); });
  auto loaded = f.node.loader().load(SwitchletImage::named("probe"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(f.node.loader().state_of("probe"), SwitchletState::kRunning);
  // start() ran its registrations.
  EXPECT_EQ(f.node.funcs().eval("probe.ping").value(), "pong");
  EXPECT_EQ(f.node.loader().stats().loaded, 1u);
}

TEST(SwitchletLoader, RejectsDigestMismatch) {
  // The Caml analog: byte codes compiled against a different interface
  // signature fail to link.
  Fixture f;
  f.node.loader().registry().add("probe",
                                 [] { return std::make_unique<ProbeSwitchlet>(); });
  SwitchletImage img = SwitchletImage::named("probe");
  img.required_interface.bytes[0] ^= 0xFF;
  const auto loaded = f.node.loader().load(img);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("digest mismatch"), std::string::npos);
  EXPECT_EQ(f.node.loader().stats().rejected_digest, 1u);
  EXPECT_EQ(f.node.loader().find("probe"), nullptr);
}

TEST(SwitchletLoader, RejectsUnknownName) {
  Fixture f;
  const auto loaded = f.node.loader().load(SwitchletImage::named("nonexistent"));
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(f.node.loader().stats().rejected_unknown, 1u);
}

TEST(SwitchletLoader, LoadBytesPath) {
  Fixture f;
  f.node.loader().registry().add("probe",
                                 [] { return std::make_unique<ProbeSwitchlet>(); });
  const util::ByteBuffer wire = SwitchletImage::named("probe").encode();
  ASSERT_TRUE(f.node.loader().load_bytes(wire).has_value());
  EXPECT_NE(f.node.loader().find("probe"), nullptr);
}

TEST(SwitchletLoader, LoadBytesRejectsMalformed) {
  Fixture f;
  const auto loaded = f.node.loader().load_bytes(util::to_bytes("garbage"));
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(f.node.loader().stats().rejected_malformed, 1u);
}

TEST(SwitchletLoader, DuplicateLoadRefused) {
  Fixture f;
  ASSERT_TRUE(f.node.loader().load_instance(std::make_unique<ProbeSwitchlet>()));
  const auto second = f.node.loader().load_instance(std::make_unique<ProbeSwitchlet>());
  EXPECT_FALSE(second.has_value());
}

TEST(SwitchletLoader, StartFailureIsContained) {
  // "the Active Bridge can protect itself from some algorithmic failures
  // in loadable modules" -- a throwing start() must not take the node down.
  Fixture f;
  const auto loaded = f.node.loader().load_instance(std::make_unique<FaultySwitchlet>());
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(f.node.loader().stats().load_failures, 1u);
  EXPECT_EQ(f.node.loader().find("faulty"), nullptr);
}

TEST(SwitchletLoader, LifecycleStopStartSuspendResume) {
  Fixture f;
  auto owned = std::make_unique<ProbeSwitchlet>();
  ProbeSwitchlet* probe = owned.get();
  ASSERT_TRUE(f.node.loader().load_instance(std::move(owned)));
  EXPECT_EQ(probe->starts, 1);

  EXPECT_TRUE(f.node.loader().suspend("probe"));
  EXPECT_EQ(f.node.loader().state_of("probe"), SwitchletState::kSuspended);
  EXPECT_EQ(probe->suspends, 1);

  EXPECT_FALSE(f.node.loader().suspend("probe"));  // not running

  EXPECT_TRUE(f.node.loader().resume("probe"));
  EXPECT_EQ(f.node.loader().state_of("probe"), SwitchletState::kRunning);
  EXPECT_EQ(probe->resumes, 1);

  EXPECT_TRUE(f.node.loader().stop("probe"));
  EXPECT_EQ(f.node.loader().state_of("probe"), SwitchletState::kStopped);
  EXPECT_FALSE(f.node.loader().stop("probe"));  // already stopped

  EXPECT_TRUE(f.node.loader().start("probe"));
  EXPECT_EQ(probe->starts, 2);
  EXPECT_EQ(f.node.loader().state_of("probe"), SwitchletState::kRunning);
}

TEST(SwitchletLoader, StartOnSuspendedActsAsResume) {
  Fixture f;
  auto owned = std::make_unique<ProbeSwitchlet>();
  ProbeSwitchlet* probe = owned.get();
  ASSERT_TRUE(f.node.loader().load_instance(std::move(owned)));
  f.node.loader().suspend("probe");
  EXPECT_TRUE(f.node.loader().start("probe"));
  EXPECT_EQ(probe->resumes, 1);
  EXPECT_EQ(probe->starts, 1);  // not restarted from scratch
}

TEST(SwitchletLoader, UnloadRemovesAndStops) {
  Fixture f;
  auto owned = std::make_unique<ProbeSwitchlet>();
  ASSERT_TRUE(f.node.loader().load_instance(std::move(owned)));
  EXPECT_TRUE(f.node.loader().unload("probe"));
  EXPECT_EQ(f.node.loader().find("probe"), nullptr);
  EXPECT_FALSE(f.node.loader().unload("probe"));
}

TEST(SwitchletLoader, UnknownNamesAreSafeNoops) {
  Fixture f;
  EXPECT_FALSE(f.node.loader().start("ghost"));
  EXPECT_FALSE(f.node.loader().stop("ghost"));
  EXPECT_FALSE(f.node.loader().suspend("ghost"));
  EXPECT_FALSE(f.node.loader().resume("ghost"));
  EXPECT_THROW((void)f.node.loader().state_of("ghost"), std::out_of_range);
}

TEST(SwitchletLoader, LoadedNamesLists) {
  Fixture f;
  ASSERT_TRUE(
      f.node.loader().load_instance(std::make_unique<ProbeSwitchlet>("alpha")));
  ASSERT_TRUE(f.node.loader().load_instance(std::make_unique<ProbeSwitchlet>("beta")));
  const auto names = f.node.loader().loaded_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
}

TEST(SafeEnvDigest, IsStableAndTracksSignature) {
  EXPECT_EQ(SafeEnv::interface_digest(), SafeEnv::interface_digest());
  EXPECT_EQ(SafeEnv::interface_digest(),
            util::md5(std::string_view(SafeEnv::kInterfaceSignature)));
}

}  // namespace
}  // namespace ab::active
