#include "src/active/node.h"

#include <gtest/gtest.h>

#include "src/netsim/network.h"

namespace ab::active {
namespace {

ether::Frame broadcast_frame(ether::MacAddress src, std::size_t len = 64) {
  return ether::Frame::ethernet2(ether::MacAddress::broadcast(), src,
                                 ether::EtherType::kExperimental,
                                 util::ByteBuffer(len, 0x11));
}

TEST(ActiveNode, CountsReceivedFrames) {
  netsim::Network net;
  auto& lan = net.add_segment("lan");
  ActiveNode node(net.scheduler());
  node.add_port(net.add_nic("eth0", lan));
  auto& peer = net.add_nic("peer", lan);
  for (int i = 0; i < 3; ++i) peer.transmit(broadcast_frame(peer.mac()));
  net.scheduler().run();
  EXPECT_EQ(node.frames_received(), 3u);
}

TEST(ActiveNode, CostModelDelaysDispatch) {
  netsim::Network net;
  auto& lan = net.add_segment("lan");
  ActiveNodeConfig cfg;
  cfg.cost.per_frame = netsim::milliseconds(5);
  ActiveNode node(net.scheduler(), cfg);
  const PortId port = node.add_port(net.add_nic("eth0", lan));
  node.ports().bind_in("eth0");

  netsim::TimePoint dispatched{};
  node.demux().register_address(ether::MacAddress::broadcast(),
                                [&](const Packet& p) {
                                  dispatched = p.received_at;
                                  EXPECT_EQ(p.ingress, port);
                                });
  auto& peer = net.add_nic("peer", lan);
  peer.transmit(broadcast_frame(peer.mac(), 100));
  net.scheduler().run();
  // Wire time + 5 ms of node software time.
  EXPECT_GE(dispatched.time_since_epoch(), netsim::milliseconds(5));
  EXPECT_EQ(node.processing().processed(), 1u);
}

TEST(ActiveNode, FramesSerializeThroughTheNode) {
  // Two frames arriving back-to-back are processed one after another: the
  // second's dispatch is one service time after the first's.
  netsim::Network net;
  auto& lan = net.add_segment("lan");
  ActiveNodeConfig cfg;
  cfg.cost.per_frame = netsim::milliseconds(10);
  ActiveNode node(net.scheduler(), cfg);
  node.add_port(net.add_nic("eth0", lan));
  std::vector<netsim::TimePoint> dispatches;
  node.demux().register_address(ether::MacAddress::broadcast(),
                                [&](const Packet& p) {
                                  dispatches.push_back(p.received_at);
                                });
  auto& peer = net.add_nic("peer", lan);
  peer.transmit(broadcast_frame(peer.mac()));
  peer.transmit(broadcast_frame(peer.mac()));
  net.scheduler().run();
  ASSERT_EQ(dispatches.size(), 2u);
  EXPECT_GE(dispatches[1] - dispatches[0], netsim::milliseconds(10));
}

TEST(ActiveNode, LogSinkIsWired) {
  netsim::Network net;
  auto sink = std::make_shared<util::CaptureSink>();
  ActiveNodeConfig cfg;
  cfg.log_sink = sink;
  ActiveNode node(net.scheduler(), cfg);
  node.logger().info("test", "hello node");
  EXPECT_TRUE(sink->contains("hello node"));
}

TEST(ActiveNode, EnvExposesTheNodeFacilities) {
  netsim::Network net;
  ActiveNode node(net.scheduler());
  SafeEnv& env = node.env();
  EXPECT_EQ(&env.ports(), &node.ports());
  EXPECT_EQ(&env.demux(), &node.demux());
  EXPECT_EQ(&env.funcs(), &node.funcs());
  env.funcs().register_func("probe", [](const std::string&) { return "ok"; });
  EXPECT_TRUE(node.funcs().has("probe"));
  EXPECT_EQ(env.timers().now(), net.scheduler().now());
}

TEST(ActiveNode, TimersScheduleOnTheNodeScheduler) {
  netsim::Network net;
  ActiveNode node(net.scheduler());
  int fired = 0;
  const netsim::EventId id =
      node.env().timers().schedule_after(netsim::seconds(1), [&] { ++fired; });
  node.env().timers().schedule_after(netsim::seconds(2), [&] { ++fired; });
  node.env().timers().cancel(id);
  net.scheduler().run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace ab::active
