#include "src/active/demux.h"

#include <gtest/gtest.h>

#include "src/netsim/network.h"

namespace ab::active {
namespace {

struct Fixture {
  netsim::Network net;
  netsim::LanSegment* lan;
  netsim::Nic* eth0;
  PortTable table;
  Demux demux;

  Fixture() : table(net.scheduler()), demux(table) {
    lan = &net.add_segment("lan");
    eth0 = &net.add_nic("eth0", *lan);
    table.add_interface(*eth0);
  }

  Packet packet(ether::MacAddress dst, PortId ingress = 0) {
    Packet p;
    p.wire = ether::Frame::ethernet2(dst, ether::MacAddress::local(5, 5),
                                      ether::EtherType::kExperimental, {1});
    p.ingress = ingress;
    return p;
  }
};

TEST(Demux, AddressRegistrationConsumesMatchingFrames) {
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  int stp = 0, port = 0;
  in.set_handler([&](const Packet&) { ++port; });
  f.demux.register_address(ether::MacAddress::all_bridges(),
                           [&](const Packet&) { ++stp; });
  f.demux.dispatch(f.packet(ether::MacAddress::all_bridges()));
  EXPECT_EQ(stp, 1);
  EXPECT_EQ(port, 0);  // consumed: BPDUs are not forwarded
  f.demux.dispatch(f.packet(ether::MacAddress::broadcast()));
  EXPECT_EQ(port, 1);  // everything else reaches the bound port
}

TEST(Demux, AddressRegistrationIsExclusive) {
  Fixture f;
  f.demux.register_address(ether::MacAddress::all_bridges(), [](const Packet&) {});
  EXPECT_THROW(
      f.demux.register_address(ether::MacAddress::all_bridges(), [](const Packet&) {}),
      AlreadyBound);
  f.demux.unregister_address(ether::MacAddress::all_bridges());
  EXPECT_NO_THROW(
      f.demux.register_address(ether::MacAddress::all_bridges(), [](const Packet&) {}));
}

TEST(Demux, AddressRegisteredQuery) {
  Fixture f;
  EXPECT_FALSE(f.demux.address_registered(ether::MacAddress::dec_bridge_group()));
  f.demux.register_address(ether::MacAddress::dec_bridge_group(), [](const Packet&) {});
  EXPECT_TRUE(f.demux.address_registered(ether::MacAddress::dec_bridge_group()));
}

TEST(Demux, EthertypeUnicastToNodeIsConsumed) {
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  int stack = 0, port = 0;
  in.set_handler([&](const Packet&) { ++port; });
  f.demux.register_ethertype(ether::EtherType::kExperimental,
                             [&](const Packet&) { ++stack; });
  f.demux.dispatch(f.packet(f.eth0->mac()));  // unicast to the node's port
  EXPECT_EQ(stack, 1);
  EXPECT_EQ(port, 0);
}

TEST(Demux, EthertypeGroupFrameIsTappedAndForwarded) {
  // A broadcast ARP request both reaches the loader's stack AND is bridged.
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  int stack = 0, port = 0;
  in.set_handler([&](const Packet&) { ++port; });
  f.demux.register_ethertype(ether::EtherType::kExperimental,
                             [&](const Packet&) { ++stack; });
  f.demux.dispatch(f.packet(ether::MacAddress::broadcast()));
  EXPECT_EQ(stack, 1);
  EXPECT_EQ(port, 1);
}

TEST(Demux, EthertypeForeignUnicastPassesThrough) {
  // Transit traffic between two hosts must not be eaten by the stack.
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  int stack = 0, port = 0;
  in.set_handler([&](const Packet&) { ++port; });
  f.demux.register_ethertype(ether::EtherType::kExperimental,
                             [&](const Packet&) { ++stack; });
  f.demux.dispatch(f.packet(ether::MacAddress::local(77, 1)));
  EXPECT_EQ(stack, 0);
  EXPECT_EQ(port, 1);
}

TEST(Demux, EthertypeRegistrationIsExclusive) {
  Fixture f;
  f.demux.register_ethertype(ether::EtherType::kIpv4, [](const Packet&) {});
  EXPECT_THROW(f.demux.register_ethertype(ether::EtherType::kIpv4, [](const Packet&) {}),
               AlreadyBound);
  f.demux.unregister_ethertype(ether::EtherType::kIpv4);
  EXPECT_NO_THROW(
      f.demux.register_ethertype(ether::EtherType::kIpv4, [](const Packet&) {}));
}

TEST(Demux, UnboundIngressDrops) {
  Fixture f;
  f.demux.dispatch(f.packet(ether::MacAddress::broadcast()));
  EXPECT_EQ(f.demux.stats().dropped_unbound, 1u);
}

TEST(Demux, LlcFramesSkipEthertypeRegistrations) {
  Fixture f;
  int stack = 0;
  f.demux.register_ethertype(ether::EtherType::kIpv4, [&](const Packet&) { ++stack; });
  Packet p;
  p.wire = ether::Frame::llc_frame(f.eth0->mac(), ether::MacAddress::local(5, 5),
                                    ether::LlcHeader::spanning_tree(), {1});
  p.ingress = 0;
  f.demux.dispatch(p);
  EXPECT_EQ(stack, 0);
  EXPECT_EQ(f.demux.stats().dropped_unbound, 1u);
}

TEST(Demux, StatsCountEachRoute) {
  Fixture f;
  InputPort& in = f.table.bind_in("eth0");
  in.set_handler([](const Packet&) {});
  f.demux.register_address(ether::MacAddress::all_bridges(), [](const Packet&) {});
  f.demux.dispatch(f.packet(ether::MacAddress::all_bridges()));
  f.demux.dispatch(f.packet(ether::MacAddress::broadcast()));
  EXPECT_EQ(f.demux.stats().to_address_handler, 1u);
  EXPECT_EQ(f.demux.stats().to_input_port, 1u);
}

TEST(Demux, NullHandlersRejected) {
  Fixture f;
  EXPECT_THROW(f.demux.register_address(ether::MacAddress::all_bridges(), nullptr),
               std::invalid_argument);
  EXPECT_THROW(f.demux.register_ethertype(ether::EtherType::kIpv4, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace ab::active
