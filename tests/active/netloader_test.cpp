// End-to-end network loading (paper section 5.2): a host TFTP-writes a
// switchlet image to a running active node over the simulated LAN; the
// node's four-layer loader receives it and links it.
#include "src/active/netloader.h"

#include <gtest/gtest.h>

#include <set>

#include "src/active/node.h"
#include "src/netsim/network.h"
#include "src/stack/arp.h"
#include "src/stack/host_stack.h"

namespace ab::active {
namespace {

class MarkerSwitchlet final : public Switchlet {
 public:
  std::string_view name() const override { return "marker"; }
  void start(SafeEnv& env) override {
    env.funcs().register_func("marker.loaded",
                              [](const std::string&) { return std::string("yes"); });
  }
  void stop() override {}
};

struct Fixture {
  netsim::Network net;
  netsim::LanSegment* lan;
  netsim::Nic* host_nic;
  netsim::Nic* node_nic;
  std::unique_ptr<stack::HostStack> host;
  std::unique_ptr<ActiveNode> node;
  NetLoaderSwitchlet* netloader = nullptr;
  std::unique_ptr<stack::TftpClient> tftp;
  const stack::Ipv4Addr node_ip{10, 0, 0, 1};
  const stack::Ipv4Addr host_ip{10, 0, 0, 100};

  Fixture() {
    lan = &net.add_segment("lan");
    host_nic = &net.add_nic("host0", *lan);
    node_nic = &net.add_nic("eth0", *lan);

    stack::HostConfig hc;
    hc.ip = host_ip;
    host = std::make_unique<stack::HostStack>(net.scheduler(), *host_nic, hc);

    node = std::make_unique<ActiveNode>(net.scheduler());
    node->add_port(*node_nic);
    node->loader().registry().add("marker",
                                  [] { return std::make_unique<MarkerSwitchlet>(); });
    auto nl = std::make_unique<NetLoaderSwitchlet>(NetLoaderConfig{node_ip},
                                                   node->loader());
    netloader = nl.get();
    EXPECT_TRUE(node->loader().load_instance(std::move(nl)).has_value());

    // A TFTP client running over the host's full UDP stack.
    tftp = std::make_unique<stack::TftpClient>(
        net.scheduler(), [this](const stack::TftpEndpoint& peer, std::uint16_t local,
                                util::ByteBuffer packet) {
          ensure_bound(local);
          host->send_udp(peer.ip, local, peer.port, std::move(packet));
        });
  }

  void ensure_bound(std::uint16_t local) {
    if (bound_.insert(local).second) {
      host->bind_udp(local, [this, local](stack::Ipv4Addr src,
                                          const stack::UdpDatagram& d) {
        tftp->on_datagram({src, d.src_port}, local, d.payload);
      });
    }
  }

  std::set<std::uint16_t> bound_;
};

TEST(NetLoader, LoadsASwitchletDeliveredOverTftp) {
  Fixture f;
  bool done = false, ok = false;
  f.tftp->put({f.node_ip, stack::TftpServer::kWellKnownPort}, "marker.img",
              SwitchletImage::named("marker").encode(),
              [&](bool success, const std::string&) {
                done = true;
                ok = success;
              });
  f.net.scheduler().run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_NE(f.node->loader().find("marker"), nullptr);
  EXPECT_EQ(f.node->funcs().eval("marker.loaded").value(), "yes");
  EXPECT_EQ(f.netloader->stats().files_received, 1u);
  EXPECT_GT(f.netloader->stats().bytes_received, 0u);
  EXPECT_EQ(f.netloader->stats().switchlets_loaded, 1u);
  EXPECT_EQ(f.netloader->stats().last_loaded, "marker");
  EXPECT_GE(f.netloader->stats().arp_replies, 1u);  // host resolved the node
}

TEST(NetLoader, FloodedArpDuplicatesDrawOneReply) {
  // A multi-port node hears a flooded broadcast once per attached segment;
  // a burst of copies must be answered exactly once so the querier's ARP
  // cache never flaps between port identities (regression: the cache flip
  // mid-TFTP-transfer wedged staged rollouts on k-regular graphs).
  Fixture f;
  const stack::ArpPacket request = stack::ArpPacket::request(
      f.host_nic->mac(), f.host_ip, f.node_ip);
  int replies_on_wire = 0;
  f.lan->set_frame_tap([&](netsim::TimePoint, const netsim::Nic* sender,
                           util::ByteView) {
    if (sender == f.node_nic) ++replies_on_wire;
  });
  for (int copy = 0; copy < 3; ++copy) {
    f.host_nic->transmit(ether::Frame::ethernet2(
        ether::MacAddress::broadcast(), f.host_nic->mac(), ether::EtherType::kArp,
        request.encode()));
  }
  f.net.scheduler().run_for(netsim::milliseconds(10));
  EXPECT_EQ(f.netloader->stats().arp_replies, 1u);
  EXPECT_EQ(f.netloader->stats().arp_duplicates_suppressed, 2u);
  EXPECT_EQ(replies_on_wire, 1);
  // Past the suppression window a fresh request (a genuine retry) is
  // answered again.
  f.net.scheduler().run_for(NetLoaderSwitchlet::kArpReplySuppression);
  f.host_nic->transmit(ether::Frame::ethernet2(
      ether::MacAddress::broadcast(), f.host_nic->mac(), ether::EtherType::kArp,
      request.encode()));
  f.net.scheduler().run_for(netsim::milliseconds(10));
  EXPECT_EQ(f.netloader->stats().arp_replies, 2u);
}

TEST(NetLoader, RejectsImageWithWrongDigestButTransferSucceeds) {
  // Transport succeeds; the *loader* refuses the stale module.
  Fixture f;
  SwitchletImage img = SwitchletImage::named("marker");
  img.required_interface.bytes[5] ^= 0x55;
  bool ok = false;
  f.tftp->put({f.node_ip, stack::TftpServer::kWellKnownPort}, "stale.img",
              img.encode(), [&](bool success, const std::string&) { ok = success; });
  f.net.scheduler().run();
  EXPECT_TRUE(ok);  // TFTP itself completed
  EXPECT_EQ(f.node->loader().find("marker"), nullptr);
  EXPECT_EQ(f.netloader->stats().switchlet_load_failures, 1u);
  EXPECT_EQ(f.node->loader().stats().rejected_digest, 1u);
}

TEST(NetLoader, MinimalIpDropsFragments) {
  // The paper's loader IP "does not, for example, implement fragmentation".
  // TFTP blocks are 512 bytes, so to force IP fragmentation we shrink the
  // sending host's MTU; the loader must then drop every fragment.
  Fixture f;
  f.host = nullptr;
  stack::HostConfig hc;
  hc.ip = f.host_ip;
  hc.mtu = 300;  // every 512-byte TFTP DATA datagram now fragments
  f.host = std::make_unique<stack::HostStack>(f.net.scheduler(), *f.host_nic, hc);
  f.bound_.clear();

  // Pad the image so its first TFTP DATA block is full-size (512 bytes of
  // payload -> a 540-byte UDP datagram, which fragments at MTU 300).
  SwitchletImage padded = SwitchletImage::named("marker");
  padded.payload.assign(2000, 0xAA);
  bool done = false, ok = true;
  f.tftp->put({f.node_ip, stack::TftpServer::kWellKnownPort}, "frag.img",
              padded.encode(), [&](bool success, const std::string&) {
                done = true;
                ok = success;
              });
  f.net.scheduler().run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);  // retransmits exhausted: fragments never reassembled
  EXPECT_GT(f.netloader->stats().fragments_dropped, 0u);
  EXPECT_EQ(f.netloader->stats().files_received, 0u);
}

TEST(NetLoader, IgnoresNonUdpTraffic) {
  Fixture f;
  // An ICMP ping to the loader's IP: minimal IP drops non-UDP.
  f.host->send_echo_request(f.node_ip, 1, 1, {});
  f.net.scheduler().run();
  EXPECT_GE(f.netloader->stats().non_udp_dropped, 1u);
}

TEST(NetLoader, StopUnregistersTheStack) {
  Fixture f;
  f.node->loader().stop("loader.net");
  bool done = false, ok = true;
  f.tftp->put({f.node_ip, stack::TftpServer::kWellKnownPort}, "x.img",
              SwitchletImage::named("marker").encode(),
              [&](bool success, const std::string&) {
                done = true;
                ok = success;
              });
  f.net.scheduler().run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);  // nobody answers ARP or TFTP
  EXPECT_EQ(f.netloader->stats().files_received, 0u);
}

TEST(NetLoader, RequiresNonZeroIp) {
  netsim::Network net;
  ActiveNode node(net.scheduler());
  EXPECT_THROW(NetLoaderSwitchlet(NetLoaderConfig{}, node.loader()),
               std::invalid_argument);
}

}  // namespace
}  // namespace ab::active
