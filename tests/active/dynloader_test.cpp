// dlopen plugin loading: the C++ analog of Caml Dynlink. Plugin shared
// objects are built by CMake (tests/plugins/) and their paths passed in as
// compile definitions.
#include "src/active/dynloader.h"

#include <gtest/gtest.h>

#include <fstream>

#include "src/active/node.h"
#include "src/netsim/network.h"

namespace ab::active {
namespace {

util::ByteBuffer read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return util::ByteBuffer(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
}

TEST(DynLoader, LoadsAWellFormedPlugin) {
  auto plugin = DynLoader::load_from_file(AB_HELLO_PLUGIN_PATH);
  ASSERT_TRUE(plugin.has_value()) << plugin.error();
  EXPECT_EQ(plugin->switchlet->name(), "plugin.hello");
  EXPECT_NE(plugin->handle, nullptr);
}

TEST(DynLoader, PluginRunsAgainstTheNode) {
  netsim::Network net;
  ActiveNode node(net.scheduler());
  auto plugin = DynLoader::load_from_file(AB_HELLO_PLUGIN_PATH);
  ASSERT_TRUE(plugin.has_value()) << plugin.error();
  ASSERT_TRUE(node.loader()
                  .load_instance(std::move(plugin->switchlet), plugin->handle)
                  .has_value());
  EXPECT_EQ(node.funcs().eval("plugin.hello.greet", "world").value(), "hello, world");
  EXPECT_TRUE(node.loader().stop("plugin.hello"));
  EXPECT_FALSE(node.funcs().has("plugin.hello.greet"));
}

TEST(DynLoader, RefusesStaleInterfaceDigest) {
  const auto plugin = DynLoader::load_from_file(AB_STALE_PLUGIN_PATH);
  ASSERT_FALSE(plugin.has_value());
  EXPECT_NE(plugin.error().find("digest mismatch"), std::string::npos);
}

TEST(DynLoader, RefusesNonPluginSharedObject) {
  const auto plugin = DynLoader::load_from_file("/lib/x86_64-linux-gnu/libm.so.6");
  // Either dlopen fails or the ABI symbols are missing; both are errors.
  EXPECT_FALSE(plugin.has_value());
}

TEST(DynLoader, RefusesMissingFile) {
  const auto plugin = DynLoader::load_from_file("/nonexistent/plugin.so");
  ASSERT_FALSE(plugin.has_value());
  EXPECT_NE(plugin.error().find("dlopen"), std::string::npos);
}

TEST(DynLoader, LoadFromBytesMaterializesAndLoads) {
  const util::ByteBuffer so_bytes = read_file(AB_HELLO_PLUGIN_PATH);
  ASSERT_FALSE(so_bytes.empty());
  auto plugin = DynLoader::load_from_bytes("plugin.hello", so_bytes);
  ASSERT_TRUE(plugin.has_value()) << plugin.error();
  EXPECT_EQ(plugin->switchlet->name(), "plugin.hello");
}

TEST(DynLoader, NativeImageThroughTheLoader) {
  // Full path: wrap the .so in a kNative image and hand it to the node's
  // loader, exactly what the TFTP receive path does.
  netsim::Network net;
  ActiveNode node(net.scheduler());
  const SwitchletImage img =
      SwitchletImage::native("plugin.hello", read_file(AB_HELLO_PLUGIN_PATH));
  auto loaded = node.loader().load_bytes(img.encode());
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(node.funcs().eval("plugin.hello.greet").value(), "hello, bridge");
}

TEST(DynLoader, LoadFromBytesRejectsGarbage) {
  const auto plugin = DynLoader::load_from_bytes("junk", util::to_bytes("not an ELF"));
  EXPECT_FALSE(plugin.has_value());
}

}  // namespace
}  // namespace ab::active
