// TCP segment and option parser robustness sweeps, run under the same
// ASan/UBSan job as codec_fuzz_test: truncated headers, bogus data offsets,
// random flag soup and structurally broken options must produce a parse
// error, never a crash or an over-read. Mirrors the fuzz_decoder discipline
// of tests/fuzz/codec_fuzz_test.cpp.
#include <gtest/gtest.h>

#include "src/stack/tcp.h"
#include "src/util/rng.h"

namespace ab::stack {
namespace {

const Ipv4Addr kSrc(10, 0, 0, 1);
const Ipv4Addr kDst(10, 0, 0, 2);

util::ByteBuffer random_bytes(util::Rng& rng, std::size_t max_len) {
  util::ByteBuffer out(rng.index(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
  return out;
}

util::ByteBuffer valid_segment() {
  TcpSegment s;
  s.src_port = 4001;
  s.dst_port = 5001;
  s.seq = 0x10203040;
  s.ack = 0x0A0B0C0D;
  s.flags = TcpSegment::kSyn | TcpSegment::kAck;
  s.window = 0xFFFF;
  s.options = {2, 4, 0x05, 0xB4};  // MSS 1460
  s.payload = util::ByteBuffer(64, 0x5A);
  return encode_tcp(kSrc, kDst, s);
}

class TcpSegmentFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpSegmentFuzz, RandomAndMutatedBuffersNeverCrashDecode) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    const util::ByteBuffer junk = random_bytes(rng, 256);
    (void)decode_tcp(kSrc, kDst, junk);  // must not crash; result irrelevant
  }
  const util::ByteBuffer valid = valid_segment();
  for (int i = 0; i < 400; ++i) {
    util::ByteBuffer mutated = valid;
    const int op = static_cast<int>(rng.uniform(0, 2));
    if (op == 0) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<std::uint8_t>(rng.uniform(1, 255));
    } else if (op == 1 && mutated.size() > 1) {
      mutated.resize(rng.index(mutated.size()));  // truncate
    } else {
      const util::ByteBuffer extra = random_bytes(rng, 32);
      mutated.insert(mutated.end(), extra.begin(), extra.end());
    }
    (void)decode_tcp(kSrc, kDst, mutated);
  }
}

TEST_P(TcpSegmentFuzz, RandomOptionBytesNeverCrashParser) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    const util::ByteBuffer options = random_bytes(rng, 64);
    (void)parse_tcp_options(options);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpSegmentFuzz, ::testing::Values(11, 23, 47, 89));

// Targeted structural attacks: every data-offset value, with and without a
// checksum fixed up to match, plus every flag combination. These hit the
// header-length arithmetic the random sweeps may miss.
TEST(TcpSegmentFuzz, EveryDataOffsetIsRejectedOrBounded) {
  const util::ByteBuffer valid = valid_segment();
  for (int offset = 0; offset <= 15; ++offset) {
    util::ByteBuffer mutated = valid;
    mutated[12] = static_cast<std::uint8_t>(offset << 4);
    const auto decoded = decode_tcp(kSrc, kDst, mutated);
    // Offsets below 5 or past the buffer must fail; others may only fail
    // on checksum -- either way, no crash and no over-read.
    if (offset < 5) {
      EXPECT_FALSE(decoded.has_value());
    }
  }
  // Truncate to every length below a full header.
  for (std::size_t len = 0; len < TcpSegment::kHeaderSize; ++len) {
    const util::ByteBuffer head(valid.begin(),
                                valid.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode_tcp(kSrc, kDst, head).has_value());
  }
}

TEST(TcpSegmentFuzz, ValidSegmentStillDecodes) {
  // Sanity for the mutation sweeps above: their base buffer is valid.
  const auto decoded = decode_tcp(kSrc, kDst, valid_segment());
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded.value().payload.size(), 64u);
  auto options = parse_tcp_options(decoded.value().options);
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options.value().mss.value_or(0), 1460);
}

}  // namespace
}  // namespace ab::stack
