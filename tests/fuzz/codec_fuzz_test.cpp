// Decoder robustness sweeps: every parser in the tree must reject or
// accept arbitrary bytes without crashing, and must survive random
// mutations of valid messages. This is the C++ discipline standing in for
// the memory safety Caml gave the paper for free: a hostile or corrupted
// frame can produce a parse error, never undefined behaviour.
#include <gtest/gtest.h>

#include "src/active/image.h"
#include "src/bridge/bpdu.h"
#include "src/ether/frame.h"
#include "src/stack/arp.h"
#include "src/stack/icmp.h"
#include "src/stack/ipv4.h"
#include "src/stack/tftp.h"
#include "src/stack/udp.h"
#include "src/util/rng.h"

namespace ab {
namespace {

util::ByteBuffer random_bytes(util::Rng& rng, std::size_t max_len) {
  util::ByteBuffer out(rng.index(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
  return out;
}

/// Runs `decode` over random buffers and over mutated valid messages.
template <typename DecodeFn>
void fuzz_decoder(std::uint64_t seed, const util::ByteBuffer& valid,
                  DecodeFn&& decode) {
  util::Rng rng(seed);
  for (int i = 0; i < 400; ++i) {
    const util::ByteBuffer junk = random_bytes(rng, 256);
    decode(junk);  // must not crash; result is irrelevant
  }
  for (int i = 0; i < 400 && !valid.empty(); ++i) {
    util::ByteBuffer mutated = valid;
    const int op = static_cast<int>(rng.uniform(0, 2));
    if (op == 0) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<std::uint8_t>(rng.uniform(1, 255));
    } else if (op == 1 && mutated.size() > 1) {
      mutated.resize(rng.index(mutated.size()));  // truncate
    } else {
      const util::ByteBuffer extra = random_bytes(rng, 32);
      mutated.insert(mutated.end(), extra.begin(), extra.end());
    }
    decode(mutated);
  }
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, EthernetFrame) {
  const util::ByteBuffer valid =
      ether::Frame::ethernet2(ether::MacAddress::local(1, 0),
                              ether::MacAddress::local(2, 0), ether::EtherType::kIpv4,
                              util::ByteBuffer(100, 0x42))
          .encode();
  fuzz_decoder(GetParam(), valid,
               [](util::ByteView bytes) { (void)ether::Frame::decode(bytes); });
}

TEST_P(CodecFuzz, Ipv4) {
  stack::Ipv4Header h;
  h.src = stack::Ipv4Addr(10, 0, 0, 1);
  h.dst = stack::Ipv4Addr(10, 0, 0, 2);
  h.protocol = 17;
  const util::ByteBuffer valid = h.encode(util::ByteBuffer(64, 0x01));
  fuzz_decoder(GetParam(), valid,
               [](util::ByteView bytes) { (void)stack::Ipv4Header::decode(bytes); });
}

TEST_P(CodecFuzz, Udp) {
  stack::UdpDatagram d;
  d.src_port = 1;
  d.dst_port = 2;
  d.payload = util::ByteBuffer(32, 0x77);
  const util::ByteBuffer valid =
      stack::encode_udp(stack::Ipv4Addr(1, 1, 1, 1), stack::Ipv4Addr(2, 2, 2, 2), d);
  fuzz_decoder(GetParam(), valid, [](util::ByteView bytes) {
    (void)stack::decode_udp(stack::Ipv4Addr(1, 1, 1, 1), stack::Ipv4Addr(2, 2, 2, 2),
                            bytes);
  });
}

TEST_P(CodecFuzz, Icmp) {
  stack::IcmpEcho echo;
  echo.id = 7;
  echo.seq = 9;
  echo.payload = util::ByteBuffer(48, 0x10);
  fuzz_decoder(GetParam(), echo.encode(),
               [](util::ByteView bytes) { (void)stack::IcmpEcho::decode(bytes); });
}

TEST_P(CodecFuzz, Arp) {
  const stack::ArpPacket req = stack::ArpPacket::request(
      ether::MacAddress::local(1, 0), stack::Ipv4Addr(1, 1, 1, 1),
      stack::Ipv4Addr(2, 2, 2, 2));
  fuzz_decoder(GetParam(), req.encode(),
               [](util::ByteView bytes) { (void)stack::ArpPacket::decode(bytes); });
}

TEST_P(CodecFuzz, Tftp) {
  const util::ByteBuffer valid =
      stack::encode_tftp(stack::TftpRequest{stack::TftpOp::kWrq, "mod.img", "octet"});
  fuzz_decoder(GetParam(), valid,
               [](util::ByteView bytes) { (void)stack::decode_tftp(bytes); });
}

TEST_P(CodecFuzz, SwitchletImage) {
  const util::ByteBuffer valid = active::SwitchletImage::named("bridge.dumb").encode();
  fuzz_decoder(GetParam(), valid, [](util::ByteView bytes) {
    (void)active::SwitchletImage::decode(bytes);
  });
}

TEST_P(CodecFuzz, IeeeBpduPayload) {
  const bridge::IeeeBpduCodec codec;
  bridge::Bpdu b;
  b.root = bridge::BridgeId{0x8000, ether::MacAddress::local(1, 0)};
  b.bridge = b.root;
  const ether::Frame valid = codec.encode(b, ether::MacAddress::local(1, 0));
  util::Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    ether::Frame frame = valid;
    frame.payload = random_bytes(rng, 64);
    (void)codec.decode(frame);
  }
}

TEST_P(CodecFuzz, DecBpduPayload) {
  const bridge::DecBpduCodec codec;
  bridge::Bpdu b;
  b.root = bridge::BridgeId{0x8000, ether::MacAddress::local(1, 0)};
  b.bridge = b.root;
  const ether::Frame valid = codec.encode(b, ether::MacAddress::local(1, 0));
  util::Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    ether::Frame frame = valid;
    frame.payload = random_bytes(rng, 64);
    (void)codec.decode(frame);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(11, 23, 47, 89));

TEST(CodecFuzz, ValidMessagesStillDecodeAfterFuzzRuns) {
  // Sanity: the fuzz helpers above use the same valid buffers; make sure
  // they are indeed valid.
  EXPECT_TRUE(ether::Frame::decode(
                  ether::Frame::ethernet2(ether::MacAddress::local(1, 0),
                                          ether::MacAddress::local(2, 0),
                                          ether::EtherType::kIpv4,
                                          util::ByteBuffer(100, 0x42))
                      .encode())
                  .has_value());
  EXPECT_TRUE(active::SwitchletImage::decode(
                  active::SwitchletImage::named("bridge.dumb").encode())
                  .has_value());
}

}  // namespace
}  // namespace ab
