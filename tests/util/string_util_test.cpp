#include "src/util/string_util.h"

#include <gtest/gtest.h>

namespace ab::util {
namespace {

TEST(Split, BasicFields) {
  const auto out = split("a:b:c", ':');
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[1], "b");
  EXPECT_EQ(out[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto out = split(":x:", ':');
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "");
  EXPECT_EQ(out[1], "x");
  EXPECT_EQ(out[2], "");
}

TEST(Split, NoSeparator) {
  const auto out = split("whole", ':');
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "whole");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n z \r"), "z");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ToLower, AsciiOnly) { EXPECT_EQ(to_lower("EtherNET"), "ethernet"); }

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("spanning-tree", "span"));
  EXPECT_FALSE(starts_with("span", "spanning"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d frames in %.1f ms", 42, 1.5), "42 frames in 1.5 ms");
  EXPECT_EQ(format("%s", ""), "");
}

}  // namespace
}  // namespace ab::util
