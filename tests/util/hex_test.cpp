#include "src/util/hex.h"

#include <gtest/gtest.h>

namespace ab::util {
namespace {

TEST(Hex, ToHex) {
  const ByteBuffer b = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(to_hex(b), "deadbeef");
  EXPECT_EQ(to_hex(ByteBuffer{}), "");
}

TEST(Hex, FromHexRoundTrip) {
  const ByteBuffer b = {0x00, 0x01, 0x7F, 0x80, 0xFF};
  const auto parsed = from_hex(to_hex(b));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, b);
}

TEST(Hex, FromHexAcceptsUpperCase) {
  const auto parsed = from_hex("DEADBEEF");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, (ByteBuffer{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, FromHexRejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, FromHexRejectsNonHex) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(Hex, DumpShowsOffsetsAndAscii) {
  const ByteBuffer b = to_bytes("Hello, bridge!");
  const std::string dump = hex_dump(b);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("|Hello, bridge!|"), std::string::npos);
}

TEST(Hex, DumpMultipleLines) {
  ByteBuffer b(40, 0x41);  // 'A' x 40 -> 3 lines
  const std::string dump = hex_dump(b);
  EXPECT_NE(dump.find("00000010"), std::string::npos);
  EXPECT_NE(dump.find("00000020"), std::string::npos);
}

}  // namespace
}  // namespace ab::util
