#include "src/util/log.h"

#include <gtest/gtest.h>

#include <memory>

namespace ab::util {
namespace {

TEST(Logger, CaptureSinkRecordsMessages) {
  auto sink = std::make_shared<CaptureSink>();
  Logger log(sink);
  log.info("stp", "elected root");
  log.warn("loader", "digest mismatch");
  const auto records = sink->records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].component, "stp");
  EXPECT_EQ(records[0].message, "elected root");
  EXPECT_EQ(records[1].level, LogLevel::kWarn);
  EXPECT_TRUE(sink->contains("digest"));
  EXPECT_FALSE(sink->contains("absent"));
}

TEST(Logger, LevelFilterSuppressesBelowThreshold) {
  auto sink = std::make_shared<CaptureSink>();
  Logger log(sink);
  log.set_level(LogLevel::kWarn);
  log.debug("x", "hidden");
  log.info("x", "hidden too");
  log.warn("x", "visible");
  log.error("x", "also visible");
  EXPECT_EQ(sink->records().size(), 2u);
}

TEST(Logger, SinkCanBeSwappedAtRuntime) {
  // The paper's Log module can be redirected to terminal/disk/off at will.
  auto first = std::make_shared<CaptureSink>();
  auto second = std::make_shared<CaptureSink>();
  Logger log(first);
  log.info("a", "to first");
  log.set_sink(second);
  log.info("a", "to second");
  EXPECT_TRUE(first->contains("to first"));
  EXPECT_FALSE(first->contains("to second"));
  EXPECT_TRUE(second->contains("to second"));
}

TEST(Logger, NullSinkDiscards) {
  Logger log;  // defaults to NullSink
  log.error("x", "nobody hears this");  // must not crash
}

TEST(Logger, RejectsNullSink) {
  Logger log;
  EXPECT_THROW(log.set_sink(nullptr), std::invalid_argument);
  EXPECT_THROW(Logger(nullptr), std::invalid_argument);
}

TEST(Logger, ClearResetsCapture) {
  auto sink = std::make_shared<CaptureSink>();
  Logger log(sink);
  log.info("x", "one");
  sink->clear();
  EXPECT_TRUE(sink->records().empty());
}

TEST(LogLevel, ToString) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace ab::util
