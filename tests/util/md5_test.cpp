// The RFC 1321 appendix test suite plus streaming-equivalence checks: the
// loader's interface-digest verification is only as trustworthy as this
// implementation.
#include "src/util/md5.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace ab::util {
namespace {

struct Rfc1321Case {
  std::string input;
  std::string digest;
};

class Md5Rfc1321 : public ::testing::TestWithParam<Rfc1321Case> {};

TEST_P(Md5Rfc1321, MatchesReferenceDigest) {
  const auto& [input, digest] = GetParam();
  EXPECT_EQ(md5(input).hex(), digest);
}

INSTANTIATE_TEST_SUITE_P(
    ReferenceVectors, Md5Rfc1321,
    ::testing::Values(
        Rfc1321Case{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Rfc1321Case{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Rfc1321Case{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Rfc1321Case{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Rfc1321Case{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
        Rfc1321Case{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                    "d174ab98d277d9f5a5611c2c9f419d9f"},
        Rfc1321Case{"1234567890123456789012345678901234567890123456789012345678901234"
                    "5678901234567890",
                    "57edf4a22be3c955ac49da2e2107b67a"}));

TEST(Md5, StreamingMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog, repeatedly, "
                           "until block boundaries are well exercised";
  const Md5Digest want = md5(text);
  // Feed in every possible two-part split.
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    Md5 h;
    h.update(std::string_view(text).substr(0, cut));
    h.update(std::string_view(text).substr(cut));
    EXPECT_EQ(h.finish(), want) << "split at " << cut;
  }
}

TEST(Md5, ExactBlockBoundaries) {
  // 55/56/57 and 63/64/65 bytes exercise the padding edge cases.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 121u, 128u}) {
    const std::string text(len, 'x');
    Md5 h;
    h.update(text);
    const Md5Digest streamed = h.finish();
    EXPECT_EQ(streamed, md5(text)) << "len " << len;
  }
}

TEST(Md5, UpdateAfterFinishThrows) {
  Md5 h;
  h.update(std::string_view("abc"));
  (void)h.finish();
  EXPECT_THROW(h.update(std::string_view("d")), std::logic_error);
  Md5 h2;
  (void)h2.finish();
  EXPECT_THROW((void)h2.finish(), std::logic_error);
}

TEST(Md5, DigestEqualityAndHex) {
  const Md5Digest a = md5("abc");
  const Md5Digest b = md5("abc");
  const Md5Digest c = md5("abd");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hex().size(), 32u);
}

TEST(Md5, LongInputCrossesManyBlocks) {
  // A million 'a's: classic extended vector.
  const std::string chunk(1000, 'a');
  Md5 h;
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finish().hex(), "7707d6ae4e027c70eea2a935c2296f21");
}

}  // namespace
}  // namespace ab::util
