#include "src/util/result.h"

#include <gtest/gtest.h>

#include <string>

namespace ab::util {
namespace {

Expected<int> parse_positive(int v) {
  if (v > 0) return v;
  return Unexpected{std::string("not positive")};
}

TEST(Expected, HoldsValue) {
  auto r = parse_positive(7);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(Expected, HoldsError) {
  auto r = parse_positive(-1);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), "not positive");
}

TEST(Expected, ValueOnErrorThrows) {
  auto r = parse_positive(0);
  EXPECT_THROW((void)r.value(), BadExpectedAccess);
}

TEST(Expected, ErrorOnValueThrows) {
  auto r = parse_positive(3);
  EXPECT_THROW((void)r.error(), BadExpectedAccess);
}

TEST(Expected, ValueOr) {
  EXPECT_EQ(parse_positive(5).value_or(-1), 5);
  EXPECT_EQ(parse_positive(-5).value_or(-1), -1);
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> r(std::string("bridge"));
  EXPECT_EQ(r->size(), 6u);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> r(std::string("move me"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "move me");
}

}  // namespace
}  // namespace ab::util
