#include "src/util/bytes.h"

#include <gtest/gtest.h>

namespace ab::util {
namespace {

TEST(BufWriter, WritesBigEndianIntegers) {
  BufWriter w;
  w.u8(0x01).u16(0x0203).u32(0x04050607).u64(0x08090A0B0C0D0E0Full);
  const ByteBuffer out = w.take();
  const ByteBuffer expected = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,
                               0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F};
  EXPECT_EQ(out, expected);
}

TEST(BufReader, ReadsBackWhatWriterWrote) {
  BufWriter w;
  w.u8(0xAB).u16(0xCDEF).u32(0xDEADBEEF).u64(0x0123456789ABCDEFull);
  const ByteBuffer buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.empty());
}

TEST(BufReader, ThrowsOnUnderflow) {
  const ByteBuffer buf = {0x01, 0x02};
  BufReader r(buf);
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_THROW(r.u8(), BufferUnderflow);
}

TEST(BufReader, ThrowsOnUnderflowAcrossWidths) {
  const ByteBuffer buf = {1, 2, 3};
  {
    BufReader r(buf);
    EXPECT_THROW(r.u32(), BufferUnderflow);
  }
  {
    BufReader r(buf);
    EXPECT_THROW(r.u64(), BufferUnderflow);
  }
  {
    BufReader r(buf);
    EXPECT_THROW(r.bytes(4), BufferUnderflow);
  }
  {
    BufReader r(buf);
    EXPECT_THROW(r.skip(4), BufferUnderflow);
  }
}

TEST(BufReader, UnderflowDoesNotConsume) {
  const ByteBuffer buf = {1, 2, 3};
  BufReader r(buf);
  EXPECT_THROW(r.u32(), BufferUnderflow);
  // The failed read must not have advanced the cursor.
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.u8(), 1);
}

TEST(BufReader, BytesAndViewAndRest) {
  const ByteBuffer buf = {10, 20, 30, 40, 50};
  BufReader r(buf);
  EXPECT_EQ(r.bytes(2), (ByteBuffer{10, 20}));
  const ByteView v = r.view(1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 30);
  const ByteView rest = r.rest();
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_TRUE(r.empty());
}

TEST(BufReader, CstringParsesAndConsumesNul) {
  BufWriter w;
  w.cstring("octet").u8(0x42);
  const ByteBuffer buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(r.cstring(), "octet");
  EXPECT_EQ(r.u8(), 0x42);
}

TEST(BufReader, CstringThrowsWhenUnterminated) {
  const ByteBuffer buf = {'a', 'b', 'c'};
  BufReader r(buf);
  EXPECT_THROW(r.cstring(), BufferUnderflow);
}

TEST(BufReader, FillCopiesExactSpan) {
  const ByteBuffer buf = {1, 2, 3, 4};
  BufReader r(buf);
  std::array<std::uint8_t, 3> dst{};
  r.fill(dst);
  EXPECT_EQ(dst, (std::array<std::uint8_t, 3>{1, 2, 3}));
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(BufWriter, FixedModeWritesThroughSpan) {
  std::array<std::uint8_t, 4> storage{};
  BufWriter w{std::span<std::uint8_t>(storage)};
  w.u16(0xAABB).u16(0xCCDD);
  EXPECT_EQ(storage, (std::array<std::uint8_t, 4>{0xAA, 0xBB, 0xCC, 0xDD}));
}

TEST(BufWriter, FixedModeThrowsOnOverflow) {
  std::array<std::uint8_t, 3> storage{};
  BufWriter w{std::span<std::uint8_t>(storage)};
  w.u16(0x1122);
  EXPECT_THROW(w.u16(0x3344), BufferOverflow);
}

TEST(BufWriter, TakeOnFixedWriterIsAnError) {
  std::array<std::uint8_t, 2> storage{};
  BufWriter w{std::span<std::uint8_t>(storage)};
  EXPECT_THROW((void)w.take(), std::logic_error);
}

TEST(BufWriter, ZerosAppendsZeroBytes) {
  BufWriter w;
  w.u8(1).zeros(3).u8(2);
  EXPECT_EQ(w.take(), (ByteBuffer{1, 0, 0, 0, 2}));
}

TEST(Bytes, StringRoundTrip) {
  const ByteBuffer b = to_bytes("hello");
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, EqualBytes) {
  const ByteBuffer a = {1, 2, 3};
  const ByteBuffer b = {1, 2, 3};
  const ByteBuffer c = {1, 2, 4};
  const ByteBuffer d = {1, 2};
  EXPECT_TRUE(equal_bytes(a, b));
  EXPECT_FALSE(equal_bytes(a, c));
  EXPECT_FALSE(equal_bytes(a, d));
}

}  // namespace
}  // namespace ab::util
