#include "src/util/crc32.h"

#include <gtest/gtest.h>

#include <string>

#include "src/util/bytes.h"

namespace ab::util {
namespace {

ByteBuffer bytes_of(const std::string& s) { return to_bytes(s); }

TEST(Crc32, KnownVectors) {
  // Standard CRC-32/ISO-HDLC check values.
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes_of("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const ByteBuffer data = bytes_of("incremental CRC computation must match one-shot");
  const std::uint32_t want = crc32(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    Crc32 c;
    c.update(ByteView(data).first(cut));
    c.update(ByteView(data).subspan(cut));
    EXPECT_EQ(c.value(), want) << "split at " << cut;
  }
}

TEST(Crc32, ValueIsNonDestructive) {
  Crc32 c;
  c.update(bytes_of("12345"));
  const std::uint32_t mid = c.value();
  EXPECT_EQ(mid, c.value());
  c.update(bytes_of("6789"));
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc32, SingleBitFlipChangesValue) {
  ByteBuffer data = bytes_of("frame body for corruption test");
  const std::uint32_t clean = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(crc32(data), clean) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

}  // namespace
}  // namespace ab::util
