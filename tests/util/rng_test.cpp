#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace ab::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1000000) == b.uniform(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(13), 13u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  // Out-of-range probabilities clamp instead of throwing.
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_GT(hits, 2700);
  EXPECT_LT(hits, 3300);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.unit();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace ab::util
