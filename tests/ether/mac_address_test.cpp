#include "src/ether/mac_address.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ab::ether {
namespace {

TEST(MacAddress, ParseAndFormatRoundTrip) {
  const auto mac = MacAddress::parse("01:80:c2:00:00:00");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "01:80:c2:00:00:00");
  EXPECT_EQ(*mac, MacAddress::all_bridges());
}

TEST(MacAddress, ParseAcceptsUpperCase) {
  const auto mac = MacAddress::parse("DE:AD:BE:EF:00:01");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "de:ad:be:ef:00:01");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("00:11:22:33:44").has_value());
  EXPECT_FALSE(MacAddress::parse("00:11:22:33:44:55:66").has_value());
  EXPECT_FALSE(MacAddress::parse("00-11-22-33-44-55").has_value());
  EXPECT_FALSE(MacAddress::parse("0g:11:22:33:44:55").has_value());
  EXPECT_FALSE(MacAddress::parse("00:11:22:33:44:5").has_value());
}

TEST(MacAddress, GroupBitClassification) {
  EXPECT_TRUE(MacAddress::broadcast().is_group());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress::broadcast().is_multicast());

  EXPECT_TRUE(MacAddress::all_bridges().is_group());
  EXPECT_TRUE(MacAddress::all_bridges().is_multicast());
  EXPECT_FALSE(MacAddress::all_bridges().is_broadcast());

  EXPECT_TRUE(MacAddress::dec_bridge_group().is_multicast());

  const auto unicast = MacAddress::parse("02:00:00:00:00:01");
  ASSERT_TRUE(unicast.has_value());
  EXPECT_TRUE(unicast->is_unicast());
  EXPECT_FALSE(unicast->is_group());
}

TEST(MacAddress, WellKnownAddressesMatchTheStandards) {
  EXPECT_EQ(MacAddress::all_bridges().to_string(), "01:80:c2:00:00:00");
  EXPECT_EQ(MacAddress::dec_bridge_group().to_string(), "09:00:2b:01:00:00");
}

TEST(MacAddress, LocalAddressesAreUnicastAndDistinct) {
  std::unordered_set<MacAddress> seen;
  for (std::uint32_t node = 0; node < 10; ++node) {
    for (std::uint16_t port = 0; port < 10; ++port) {
      const MacAddress mac = MacAddress::local(node, port);
      EXPECT_TRUE(mac.is_unicast());
      EXPECT_TRUE(seen.insert(mac).second) << "duplicate " << mac.to_string();
    }
  }
}

TEST(MacAddress, OrderingFollowsNumericValue) {
  const MacAddress low({0, 0, 0, 0, 0, 1});
  const MacAddress high({0, 0, 0, 0, 1, 0});
  EXPECT_LT(low, high);
  EXPECT_LT(low.value(), high.value());
}

TEST(MacAddress, ReadWriteRoundTrip) {
  const MacAddress mac({0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC});
  util::BufWriter w;
  mac.write(w);
  const util::ByteBuffer buf = w.take();
  ASSERT_EQ(buf.size(), 6u);
  util::BufReader r(buf);
  EXPECT_EQ(MacAddress::read(r), mac);
}

TEST(MacAddress, ZeroSentinel) {
  EXPECT_TRUE(MacAddress().is_zero());
  EXPECT_FALSE(MacAddress::broadcast().is_zero());
}

}  // namespace
}  // namespace ab::ether
