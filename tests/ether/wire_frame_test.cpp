#include "src/ether/frame.h"

#include <gtest/gtest.h>

namespace ab::ether {
namespace {

Frame dix_frame(std::size_t len = 64) {
  return Frame::ethernet2(MacAddress::local(1, 0), MacAddress::local(2, 0),
                          EtherType::kExperimental, util::ByteBuffer(len, 0xAB));
}

Frame llc_frame() {
  return Frame::llc_frame(MacAddress::all_bridges(), MacAddress::local(3, 0),
                          LlcHeader::spanning_tree(), util::ByteBuffer(50, 0x42));
}

TEST(WireFrame, EmptyHandleThrowsOnAccess) {
  WireFrame wf;
  EXPECT_TRUE(wf.empty());
  EXPECT_FALSE(wf.ok());
  EXPECT_THROW((void)wf.parsed(), std::logic_error);
  EXPECT_THROW((void)wf.wire(), std::logic_error);
  EXPECT_THROW((void)wf.wire_size(), std::logic_error);
}

TEST(WireFrame, TransmitSideEncodesLazilyAndExactlyOnce) {
  const WireFrame wf(dix_frame());
  datapath_counters() = {};
  EXPECT_EQ(wf.wire_size(), dix_frame().wire_size());  // no encode forced
  EXPECT_EQ(datapath_counters().encodes, 0u);

  const WireFrame copy = wf;  // shares the representation and its caches
  (void)wf.wire();
  (void)wf.wire();
  (void)copy.wire();
  EXPECT_EQ(datapath_counters().encodes, 1u);
  EXPECT_EQ(copy.wire().data(), wf.wire().data());  // literally the same bytes
}

TEST(WireFrame, ReceiveSideDecodesLazilyAndExactlyOnce) {
  const util::ByteBuffer wire = dix_frame().encode();
  const WireFrame wf = WireFrame::from_wire(wire);
  const WireFrame copy = wf;

  datapath_counters() = {};
  EXPECT_TRUE(wf.ok());
  EXPECT_TRUE(copy.ok());
  (void)wf.frame();
  (void)copy.frame();
  EXPECT_EQ(datapath_counters().decodes, 1u);
  EXPECT_EQ(datapath_counters().fcs_verifies, 1u);
  EXPECT_EQ(&wf.frame(), &copy.frame());  // one cached parse, shared
}

TEST(WireFrame, SharedBufferDecodeMatchesLegacyFrameDecode) {
  for (const Frame& f : {dix_frame(), dix_frame(1500), llc_frame()}) {
    const util::ByteBuffer wire = f.encode();
    const auto legacy = Frame::decode(wire);
    ASSERT_TRUE(legacy.has_value());
    const WireFrame wf = WireFrame::from_wire(wire);
    ASSERT_TRUE(wf.ok());
    EXPECT_EQ(wf.frame(), legacy.value());
  }
}

TEST(WireFrame, RoundTripThroughWireBytesPreservesTheFrame) {
  const Frame original = dix_frame(200);
  const WireFrame tx(original);
  const util::ByteView wire = tx.wire();
  const WireFrame rx = WireFrame::from_wire(util::ByteBuffer(wire.begin(), wire.end()));
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ(rx.frame().dst, original.dst);
  EXPECT_EQ(rx.frame().src, original.src);
  EXPECT_EQ(rx.frame().ethertype, original.ethertype);
  EXPECT_EQ(rx.frame().payload, original.payload);
}

TEST(WireFrame, ShortEthernet2ParseMatchesWhatReceiversDecodedFromTheWire) {
  // Seed receivers decoded the wire bytes, so a sub-minimum Ethernet II
  // payload arrived with encode()'s padding retained. The shared
  // transmit-side parse must preserve that switchlet-visible behavior.
  const WireFrame tx(dix_frame(28));
  EXPECT_EQ(tx.frame().payload.size(), Frame::kMinPayload);
  const auto legacy = Frame::decode(tx.wire());
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(tx.frame(), legacy.value());
}

TEST(WireFrame, ShortLlcParseStaysUnpadded) {
  // 802.3's length field strips padding on decode, so the LLC parse keeps
  // the caller's payload length.
  const Frame f = Frame::llc_frame(MacAddress::all_bridges(), MacAddress::local(3, 0),
                                   LlcHeader::spanning_tree(),
                                   util::ByteBuffer(10, 0x42));
  const WireFrame tx(f);
  EXPECT_EQ(tx.frame().payload.size(), 10u);
  const auto legacy = Frame::decode(tx.wire());
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(tx.frame(), legacy.value());
}

TEST(WireFrame, LvalueConstructionCountsThePayloadCopyAndRvalueMoves) {
  const Frame f = dix_frame(200);
  datapath_counters() = {};
  const WireFrame copied(f);
  EXPECT_EQ(datapath_counters().bytes_copied, 200u);
  datapath_counters() = {};
  const WireFrame moved(dix_frame(200));
  EXPECT_EQ(datapath_counters().bytes_copied, 0u);
}

TEST(WireFrame, BadFcsIsCachedAsAnError) {
  util::ByteBuffer wire = dix_frame().encode();
  wire.back() ^= 0xFF;  // corrupt the FCS
  const WireFrame wf = WireFrame::from_wire(std::move(wire));
  datapath_counters() = {};
  EXPECT_FALSE(wf.ok());
  EXPECT_FALSE(wf.ok());  // second query reads the cached verdict
  EXPECT_EQ(datapath_counters().fcs_verifies, 1u);
  EXPECT_NE(wf.error().find("FCS"), std::string::npos);
}

TEST(WireFrame, CopiesShareOneRepresentation) {
  const WireFrame wf(dix_frame());
  EXPECT_EQ(wf.use_count(), 1);
  const WireFrame a = wf;
  const WireFrame b = wf;
  EXPECT_EQ(wf.use_count(), 3);
  EXPECT_EQ(a.use_count(), b.use_count());
}

TEST(WireFrame, WireSizeAgreesWithMaterializedBytes) {
  const WireFrame tx(dix_frame(10));  // padded to the 64-byte minimum
  EXPECT_EQ(tx.wire_size(), tx.wire().size());
  const WireFrame rx = WireFrame::from_wire(dix_frame(10).encode());
  EXPECT_EQ(rx.wire_size(), rx.wire().size());
}

}  // namespace
}  // namespace ab::ether
