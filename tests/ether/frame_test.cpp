#include "src/ether/frame.h"

#include <gtest/gtest.h>

#include "src/util/crc32.h"
#include "src/util/rng.h"

namespace ab::ether {
namespace {

MacAddress mac(std::uint8_t last) { return MacAddress({0x02, 0, 0, 0, 0, last}); }

TEST(Frame, Ethernet2RoundTripLargePayload) {
  util::ByteBuffer payload(200, 0x5A);
  const Frame f = Frame::ethernet2(mac(1), mac(2), EtherType::kIpv4, payload);
  const util::ByteBuffer wire = f.encode();
  const auto back = Frame::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dst, f.dst);
  EXPECT_EQ(back->src, f.src);
  ASSERT_TRUE(back->ethertype.has_value());
  EXPECT_EQ(*back->ethertype, 0x0800);
  EXPECT_EQ(back->payload, payload);
}

TEST(Frame, Ethernet2ShortPayloadIsPaddedOnTheWire) {
  util::ByteBuffer payload = {1, 2, 3};
  const Frame f = Frame::ethernet2(mac(1), mac(2), EtherType::kExperimental, payload);
  const util::ByteBuffer wire = f.encode();
  // 14 header + 46 padded payload + 4 FCS = minimum 64-byte frame.
  EXPECT_EQ(wire.size(), 64u);
  const auto back = Frame::decode(wire);
  ASSERT_TRUE(back.has_value());
  // Ethernet II has no length field: the receiver sees the padded payload,
  // exactly as on real hardware.
  ASSERT_EQ(back->payload.size(), 46u);
  EXPECT_EQ(back->payload[0], 1);
  EXPECT_EQ(back->payload[1], 2);
  EXPECT_EQ(back->payload[2], 3);
  EXPECT_EQ(back->payload[3], 0);
}

TEST(Frame, LlcRoundTripStripsPaddingExactly) {
  // 802.3 carries a length field, so even a tiny BPDU round-trips exactly.
  util::ByteBuffer payload = {0xAA, 0xBB};
  const Frame f =
      Frame::llc_frame(MacAddress::all_bridges(), mac(7), LlcHeader::spanning_tree(),
                       payload);
  const util::ByteBuffer wire = f.encode();
  const auto back = Frame::decode(wire);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->is_llc());
  EXPECT_EQ(back->llc->dsap, 0x42);
  EXPECT_EQ(back->llc->ssap, 0x42);
  EXPECT_EQ(back->payload, payload);
  EXPECT_EQ(*back, f);
}

TEST(Frame, FcsDetectsCorruption) {
  const Frame f = Frame::ethernet2(mac(1), mac(2), EtherType::kIpv4,
                                   util::ByteBuffer(100, 0x11));
  util::ByteBuffer wire = f.encode();
  wire[20] ^= 0x40;
  const auto back = Frame::decode(wire);
  EXPECT_FALSE(back.has_value());
  EXPECT_NE(back.error().find("FCS"), std::string::npos);
}

TEST(Frame, DecodeRejectsRuntFrames) {
  const util::ByteBuffer runt(10, 0);
  EXPECT_FALSE(Frame::decode(runt).has_value());
}

TEST(Frame, DecodeRejects8023LengthBeyondBody) {
  // Hand-build an 802.3 frame whose length field overruns the body.
  util::BufWriter w;
  mac(1).write(w);
  mac(2).write(w);
  w.u16(0x0100);  // claims 256 bytes of LLC+payload
  w.zeros(46);    // but provides only the minimum body
  util::ByteBuffer bytes = w.take();
  util::BufWriter fcs;
  fcs.u32(util::crc32(bytes));
  const util::ByteBuffer fcs_bytes = fcs.take();
  bytes.insert(bytes.end(), fcs_bytes.begin(), fcs_bytes.end());
  const auto back = Frame::decode(bytes);
  EXPECT_FALSE(back.has_value());
}

TEST(Frame, EncodeRejectsOversizedPayload) {
  const Frame f = Frame::ethernet2(mac(1), mac(2), EtherType::kIpv4,
                                   util::ByteBuffer(Frame::kMaxPayload + 1, 0));
  EXPECT_THROW((void)f.encode(), std::length_error);
}

TEST(Frame, Ethernet2FactoryRejectsLengthValuedType) {
  EXPECT_THROW(
      (void)Frame::ethernet2(mac(1), mac(2), std::uint16_t{0x0100}, util::ByteBuffer{}),
      std::invalid_argument);
}

TEST(Frame, WireSizeMatchesEncodeLength) {
  for (std::size_t n : {0u, 1u, 45u, 46u, 47u, 100u, 1500u}) {
    const Frame f = Frame::ethernet2(mac(1), mac(2), EtherType::kIpv4,
                                     util::ByteBuffer(n, 0x22));
    EXPECT_EQ(f.wire_size(), f.encode().size()) << "payload " << n;
  }
}

TEST(Frame, HasTypeHelper) {
  const Frame ip = Frame::ethernet2(mac(1), mac(2), EtherType::kIpv4, {});
  EXPECT_TRUE(ip.has_type(EtherType::kIpv4));
  EXPECT_FALSE(ip.has_type(EtherType::kArp));
  const Frame llc = Frame::llc_frame(mac(1), mac(2), LlcHeader::spanning_tree(), {});
  EXPECT_FALSE(llc.has_type(EtherType::kIpv4));
}

TEST(Frame, SummaryMentionsAddresses) {
  const Frame f = Frame::ethernet2(mac(1), mac(2), EtherType::kArp, {});
  const std::string s = f.summary();
  EXPECT_NE(s.find("02:00:00:00:00:02"), std::string::npos);
  EXPECT_NE(s.find("02:00:00:00:00:01"), std::string::npos);
}

// Property sweep: random frames of both encodings round-trip through
// encode/decode with payload preserved (up to Ethernet II padding).
class FrameRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameRoundTripProperty, RandomFrameRoundTrips) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const bool use_llc = rng.chance(0.5);
    const std::size_t len = rng.index(Frame::kMaxPayload - 3 + 1);
    util::ByteBuffer payload(len);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    std::array<std::uint8_t, 6> d{}, s{};
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    s[0] &= 0xFE;  // source addresses are unicast

    Frame f;
    if (use_llc) {
      f = Frame::llc_frame(MacAddress(d), MacAddress(s), LlcHeader::spanning_tree(),
                           payload);
    } else {
      f = Frame::ethernet2(MacAddress(d), MacAddress(s), EtherType::kExperimental,
                           payload);
    }
    const auto back = Frame::decode(f.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->dst, f.dst);
    EXPECT_EQ(back->src, f.src);
    if (use_llc) {
      EXPECT_EQ(back->payload, payload);
    } else {
      ASSERT_GE(back->payload.size(), payload.size());
      EXPECT_TRUE(std::equal(payload.begin(), payload.end(), back->payload.begin()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ab::ether
