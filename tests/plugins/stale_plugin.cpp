// A plugin that exports the ABI but claims a WRONG interface digest --
// modeling a module compiled against a stale SafeEnv header. The loader
// must refuse it before running any of its logic.
#include "src/active/plugin_abi.h"

namespace {

class StaleSwitchlet final : public ab::active::Switchlet {
 public:
  std::string_view name() const override { return "plugin.stale"; }
  void start(ab::active::SafeEnv&) override {}
  void stop() override {}
};

}  // namespace

extern "C" const char* ab_switchlet_name() { return "plugin.stale"; }
extern "C" const char* ab_switchlet_interface_digest() {
  // 32 hex chars of nonsense: a digest of an interface that never existed.
  return "00112233445566778899aabbccddeeff";
}
extern "C" ab::active::Switchlet* ab_switchlet_create() { return new StaleSwitchlet(); }
