// A well-formed native switchlet plugin used by the DynLoader tests and the
// plugin example: registers one function and counts frames through a bound
// port if one is free.
#include "src/active/plugin_abi.h"

namespace {

class HelloSwitchlet final : public ab::active::Switchlet {
 public:
  std::string_view name() const override { return "plugin.hello"; }

  void start(ab::active::SafeEnv& env) override {
    env_ = &env;
    env.funcs().register_func("plugin.hello.greet", [](const std::string& arg) {
      return "hello, " + (arg.empty() ? std::string("bridge") : arg);
    });
    env.log().info("plugin.hello", "native switchlet started");
  }

  void stop() override {
    if (env_ != nullptr) env_->funcs().unregister_func("plugin.hello.greet");
  }

 private:
  ab::active::SafeEnv* env_ = nullptr;
};

}  // namespace

AB_DEFINE_SWITCHLET_PLUGIN(HelloSwitchlet, "plugin.hello")
