// Deterministic loss-schedule conformance suite for the TCP in src/stack/tcp.h.
//
// Every scenario scripts exact per-frame drops on the LanSegment (no seeded
// loss model: LanConfig::loss stays 0) and then pins the resulting timer,
// counter, and cwnd behavior EXACTLY -- wire-tap timestamps of same-size
// segments differ by exactly the timer intervals (the NIC's serialization
// pipeline adds a constant offset per frame size), so retransmission
// backoff is asserted with EXPECT_EQ on Durations, not "eventually
// delivered".
#include "src/stack/tcp.h"

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/netsim/network.h"
#include "src/stack/host_stack.h"

namespace ab::stack {
namespace {

using netsim::milliseconds;
using netsim::seconds;

constexpr std::uint16_t kServerPort = 5001;
constexpr std::uint16_t kClientPort = 4001;

// ------------------------------------------------------------- codec tests

TEST(TcpCodec, EncodeDecodeRoundTrip) {
  const Ipv4Addr src(10, 0, 0, 1), dst(10, 0, 0, 2);
  TcpSegment s;
  s.src_port = 4001;
  s.dst_port = 5001;
  s.seq = 0xDEADBEEF;
  s.ack = 0x01020304;
  s.flags = TcpSegment::kSyn | TcpSegment::kAck;
  s.window = 8192;
  s.options = {2, 4, 0x05, 0xB4};  // MSS 1460
  s.payload = util::to_bytes("payload");

  const util::ByteBuffer wire = encode_tcp(src, dst, s);
  auto decoded = decode_tcp(src, dst, wire);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded.value().src_port, s.src_port);
  EXPECT_EQ(decoded.value().dst_port, s.dst_port);
  EXPECT_EQ(decoded.value().seq, s.seq);
  EXPECT_EQ(decoded.value().ack, s.ack);
  EXPECT_EQ(decoded.value().flags, s.flags);
  EXPECT_EQ(decoded.value().window, s.window);
  EXPECT_EQ(decoded.value().payload, s.payload);

  auto options = parse_tcp_options(decoded.value().options);
  ASSERT_TRUE(options.has_value());
  ASSERT_TRUE(options.value().mss.has_value());
  EXPECT_EQ(*options.value().mss, 1460);
}

TEST(TcpCodec, DecodeRejectsCorruption) {
  const Ipv4Addr src(10, 0, 0, 1), dst(10, 0, 0, 2);
  TcpSegment s;
  s.src_port = 1;
  s.dst_port = 2;
  s.payload = util::to_bytes("x");
  util::ByteBuffer wire = encode_tcp(src, dst, s);

  util::ByteBuffer flipped = wire;
  flipped[5] ^= 0x40;
  EXPECT_FALSE(decode_tcp(src, dst, flipped).has_value());  // checksum

  // A different pseudo-header address must fail the checksum. (Swapping
  // src and dst would NOT: the Internet checksum is a commutative sum.)
  EXPECT_FALSE(decode_tcp(src, Ipv4Addr(10, 0, 0, 3), wire).has_value());

  util::ByteBuffer truncated(wire.begin(), wire.begin() + 12);
  EXPECT_FALSE(decode_tcp(src, dst, truncated).has_value());

  util::ByteBuffer bad_offset = wire;
  bad_offset[12] = 0x40;  // data offset 4 < minimum 5
  EXPECT_FALSE(decode_tcp(src, dst, bad_offset).has_value());
}

TEST(TcpCodec, ParseOptionsRejectsMalformedLengths) {
  const util::ByteBuffer truncated = {2, 4, 0x05};  // MSS option cut short
  EXPECT_FALSE(parse_tcp_options(truncated).has_value());
  const util::ByteBuffer zero_len = {3, 0, 0};
  EXPECT_FALSE(parse_tcp_options(zero_len).has_value());
  const util::ByteBuffer nop_then_end = {1, 1, 0, 0};
  EXPECT_TRUE(parse_tcp_options(nop_then_end).has_value());
}

// --------------------------------------------------------------- fixture

/// One TCP segment observed on the wire by the LAN frame tap, with the
/// tap's timestamp (transmit time + the NIC's serialization delay).
struct SeenSegment {
  netsim::TimePoint at;
  Ipv4Addr src;
  TcpSegment seg;
};

std::optional<SeenSegment> parse_tcp_frame(netsim::TimePoint at,
                                           util::ByteView wire) {
  auto frame = ether::Frame::decode(wire);
  if (!frame || !frame.value().has_type(ether::EtherType::kIpv4)) return std::nullopt;
  auto packet = Ipv4Header::decode(frame.value().payload);
  if (!packet || packet.value().header.protocol !=
                     static_cast<std::uint8_t>(IpProto::kTcp)) {
    return std::nullopt;
  }
  auto seg = decode_tcp(packet.value().header.src, packet.value().header.dst,
                        packet.value().payload);
  if (!seg) return std::nullopt;
  return SeenSegment{at, packet.value().header.src, std::move(seg.value())};
}

using SegMatch = std::function<bool(const TcpSegment&)>;

/// Two hosts on one LAN with a TCP wire tap and a scripted drop filter.
struct TcpPair {
  netsim::Network net;
  netsim::LanSegment* lan = nullptr;
  std::unique_ptr<HostStack> a;  ///< client, 10.0.0.1
  std::unique_ptr<HostStack> b;  ///< server, 10.0.0.2
  std::vector<SeenSegment> trace;
  TcpSocket* client = nullptr;
  TcpSocket* server = nullptr;
  std::string server_received;

  TcpPair() {
    lan = &net.add_segment("lan");
    auto& nic_a = net.add_nic("hostA", *lan);
    auto& nic_b = net.add_nic("hostB", *lan);
    HostConfig ca, cb;
    ca.ip = Ipv4Addr(10, 0, 0, 1);
    cb.ip = Ipv4Addr(10, 0, 0, 2);
    a = std::make_unique<HostStack>(net.scheduler(), nic_a, ca);
    b = std::make_unique<HostStack>(net.scheduler(), nic_b, cb);
    lan->set_frame_tap([this](netsim::TimePoint at, const netsim::Nic*,
                              util::ByteView wire) {
      if (auto seen = parse_tcp_frame(at, wire)) trace.push_back(std::move(*seen));
    });
  }

  /// Resolves ARP both ways first, so every TCP segment afterwards goes
  /// straight to the wire (constant emit-to-tap pipeline per frame size --
  /// the property the exact timer-delta assertions rest on).
  void warm_arp() {
    a->set_echo_handler([](const HostStack::EchoReply&) {});
    b->set_echo_handler([](const HostStack::EchoReply&) {});
    a->send_echo_request(b->ip(), 9, 1, {});
    b->send_echo_request(a->ip(), 9, 1, {});
    net.scheduler().run();
    trace.clear();
  }

  /// Drops the next `count` TCP frames matching `match` (for every
  /// receiver; the tap still records them, so dropped transmissions stay
  /// visible to the assertions).
  void drop_next(SegMatch match, int count) {
    lan->set_drop_filter([match = std::move(match), count](
                             netsim::TimePoint, const netsim::Nic*,
                             util::ByteView wire) mutable {
      if (count <= 0) return false;
      auto seen = parse_tcp_frame({}, wire);
      if (!seen || !match(seen->seg)) return false;
      count -= 1;
      return true;
    });
  }

  /// Listens on the server, connects the client, runs the handshake to
  /// completion (optionally under an already-installed drop script), and
  /// clears the wire trace.
  void establish(TcpConfig client_cfg = {}, TcpConfig server_cfg = {}) {
    b->tcp_listen(kServerPort, [this](TcpSocket& s) {
      server = &s;
      s.set_receive_handler([this](util::ByteView data) {
        server_received.append(reinterpret_cast<const char*>(data.data()),
                               data.size());
      });
    }, server_cfg);
    client = &a->tcp_connect(b->ip(), kServerPort, kClientPort, client_cfg);
    net.scheduler().run();
    ASSERT_EQ(client->state(), TcpState::kEstablished);
    ASSERT_NE(server, nullptr);
    ASSERT_EQ(server->state(), TcpState::kEstablished);
    trace.clear();
  }

  [[nodiscard]] std::vector<SeenSegment> sent_by(const HostStack& host,
                                                 const SegMatch& match) const {
    std::vector<SeenSegment> out;
    for (const SeenSegment& s : trace) {
      if (s.src == host.ip() && match(s.seg)) out.push_back(s);
    }
    return out;
  }
};

SegMatch is_syn() {
  return [](const TcpSegment& s) {
    return s.has(TcpSegment::kSyn) && !s.has(TcpSegment::kAck);
  };
}
SegMatch has_payload() {
  return [](const TcpSegment& s) { return !s.payload.empty(); };
}
// ------------------------------------------------- loss-schedule scenarios

// Scenario: the first two SYNs are eaten by the wire. The handshake timer
// must back off exponentially from rto_initial -- SYN retransmissions at
// exactly +1 s and +2 s -- and Karn's rule must discard the handshake RTT
// sample (the SYN that finally connected was a retransmission).
TEST(TcpConformance, LostSynHandshakeRtoBackoff) {
  TcpPair t;
  t.warm_arp();
  t.drop_next(is_syn(), 2);

  t.b->tcp_listen(kServerPort, [&](TcpSocket& s) { t.server = &s; });
  TcpSocket& c = t.a->tcp_connect(t.b->ip(), kServerPort, kClientPort);
  t.net.scheduler().run();

  ASSERT_EQ(c.state(), TcpState::kEstablished);
  EXPECT_EQ(c.stats().rto_retransmits, 2u);
  EXPECT_EQ(c.stats().fast_retransmits, 0u);

  const auto syns = t.sent_by(*t.a, is_syn());
  ASSERT_EQ(syns.size(), 3u);
  EXPECT_EQ(syns[1].at - syns[0].at, seconds(1));  // rto_initial
  EXPECT_EQ(syns[2].at - syns[1].at, seconds(2));  // doubled

  // Karn: the SYN was retransmitted, so the handshake RTT was never
  // sampled and the backed-off RTO (1s -> 2s -> 4s) survives.
  EXPECT_EQ(c.stats().rtt_samples, 0u);
  EXPECT_EQ(c.rto(), seconds(4));
  EXPECT_EQ(t.lan->stats().frames_dropped_by_filter, 2u);
}

// Scenario: a data segment is lost twice. The handshake's RTT sample has
// clamped the RTO to rto_min (LAN RTT is microseconds), so the three
// transmissions of the segment sit at exactly +200 ms and then +400 ms --
// the doubled timeout -- and the backed-off RTO persists afterwards
// because the retransmitted segment's RTT is never sampled.
TEST(TcpConformance, LostDataRtoFiresWithDoubledTimeout) {
  TcpPair t;
  t.warm_arp();
  t.establish();
  if (HasFatalFailure()) return;
  ASSERT_EQ(t.client->stats().rtt_samples, 1u);  // timed the SYN
  ASSERT_EQ(t.client->rto(), milliseconds(200));  // clamped at rto_min

  t.drop_next(has_payload(), 2);
  t.client->send(util::to_bytes(std::string(600, 'x')));
  t.net.scheduler().run();

  EXPECT_EQ(t.server_received.size(), 600u);
  EXPECT_EQ(t.client->stats().rto_retransmits, 2u);
  EXPECT_EQ(t.client->stats().fast_retransmits, 0u);

  const auto data = t.sent_by(*t.a, has_payload());
  ASSERT_EQ(data.size(), 3u);  // original + two RTO retransmissions
  EXPECT_EQ(data[1].at - data[0].at, milliseconds(200));
  EXPECT_EQ(data[2].at - data[1].at, milliseconds(400));
  EXPECT_EQ(t.client->rto(), milliseconds(800));  // Karn kept the backoff
}

// Scenario: with four segments in flight, the first is lost once. The three
// out-of-order arrivals draw three duplicate acks, the third of which must
// trigger exactly one fast retransmit -- the RTO never fires -- and the
// Reno cut lands exactly at ssthresh = flight/2.
TEST(TcpConformance, ThreeDupAcksFastRetransmitWithoutRto) {
  TcpPair t;
  t.warm_arp();
  TcpConfig cfg;
  cfg.mss = 1000;
  cfg.initial_cwnd_segments = 4;
  t.establish(cfg);
  if (HasFatalFailure()) return;

  t.drop_next(has_payload(), 1);
  std::string payload;
  for (int i = 0; i < 4; ++i) payload.append(std::string(1000, char('a' + i)));
  t.client->send(util::to_bytes(payload));
  t.net.scheduler().run();

  EXPECT_EQ(t.server_received, payload);  // delivered in order despite the hole
  EXPECT_EQ(t.client->stats().fast_retransmits, 1u);
  EXPECT_EQ(t.client->stats().rto_retransmits, 0u);
  EXPECT_EQ(t.client->stats().dup_acks_received, 3u);
  EXPECT_EQ(t.server->stats().dup_acks_sent, 3u);
  EXPECT_EQ(t.server->stats().out_of_order_segments, 3u);

  // Wire order: the four first transmissions, then the retransmission of
  // the dropped head -- and it beats the 200 ms RTO by orders of magnitude.
  const auto data = t.sent_by(*t.a, has_payload());
  ASSERT_EQ(data.size(), 5u);
  const std::uint32_t s0 = data[0].seg.seq;
  EXPECT_EQ(data[1].seg.seq, s0 + 1000);
  EXPECT_EQ(data[2].seg.seq, s0 + 2000);
  EXPECT_EQ(data[3].seg.seq, s0 + 3000);
  EXPECT_EQ(data[4].seg.seq, s0);  // the fast retransmit
  EXPECT_LT(data[4].at - data[0].at, milliseconds(200));

  // RFC 5681 on the third dup-ack: ssthresh = max(flight/2, 2*MSS) =
  // max(4000/2, 2000) = 2000 and cwnd = ssthresh (no inflation); the
  // cumulative ack for all 4000 bytes then runs one congestion-avoidance
  // step: cwnd += MSS^2/cwnd = 500.
  EXPECT_EQ(t.client->ssthresh(), 2000u);
  EXPECT_EQ(t.client->cwnd(), 2500u);
}

// Scenario: Karn's rule. After a retransmission, the ack that finally
// arrives must NOT contribute an RTT sample (it is ambiguous which
// transmission it acks) and the backed-off RTO must persist until the next
// cleanly-acked segment refreshes it.
TEST(TcpConformance, KarnExcludesRetransmittedSegmentRtt) {
  TcpPair t;
  t.warm_arp();
  t.establish();
  if (HasFatalFailure()) return;
  ASSERT_EQ(t.client->stats().rtt_samples, 1u);
  const netsim::Duration srtt_before = t.client->srtt();

  t.drop_next(has_payload(), 1);
  t.client->send(util::to_bytes(std::string(500, 'k')));
  t.net.scheduler().run();

  // The retransmission was acked, but per Karn nothing was sampled: SRTT
  // is bit-identical and the doubled RTO stands.
  EXPECT_EQ(t.server_received.size(), 500u);
  EXPECT_EQ(t.client->stats().rto_retransmits, 1u);
  EXPECT_EQ(t.client->stats().rtt_samples, 1u);
  EXPECT_EQ(t.client->srtt(), srtt_before);
  EXPECT_EQ(t.client->rto(), milliseconds(400));

  // A clean (never-retransmitted) segment refreshes the sample and the
  // RTO collapses back to the rto_min clamp.
  t.client->send(util::to_bytes(std::string(500, 'k')));
  t.net.scheduler().run();
  EXPECT_EQ(t.client->stats().rtt_samples, 2u);
  EXPECT_EQ(t.client->rto(), milliseconds(200));
}

// Scenario: a loss-free 10-segment flow with mss = 1000 and ssthresh =
// 4000. Without delayed acks every ack covers exactly one MSS, so the
// whole slow-start -> congestion-avoidance trajectory is a hand-computable
// recurrence; the recorded cwnd after every ack must match it exactly.
TEST(TcpConformance, CwndTraceSlowStartThenAimdMatchesHandComputedTable) {
  TcpPair t;
  t.warm_arp();
  TcpConfig cfg;
  cfg.mss = 1000;
  cfg.initial_cwnd_segments = 1;
  cfg.initial_ssthresh = 4000;
  t.establish(cfg);
  if (HasFatalFailure()) return;

  std::vector<std::uint32_t> cwnd_trace;
  t.client->record_cwnd_trace(&cwnd_trace);
  t.client->send(util::to_bytes(std::string(10000, 'w')));
  t.net.scheduler().run();
  t.client->record_cwnd_trace(nullptr);

  EXPECT_EQ(t.server_received.size(), 10000u);
  EXPECT_EQ(t.client->stats().retransmits, 0u);
  // Slow start: +1000 per ack until cwnd reaches ssthresh = 4000; then
  // congestion avoidance: +floor(1000^2 / cwnd) per ack.
  const std::vector<std::uint32_t> expected = {
      2000, 3000, 4000,           // slow start: 1000 -> 4000
      4250, 4485, 4707, 4919,     // CA: +250, +235, +222, +212
      5122, 5317, 5505,           // CA: +203, +195, +188
  };
  EXPECT_EQ(cwnd_trace, expected);
}

// Scenario: simultaneous close. Both ends send FIN before seeing the
// peer's, so both pass through CLOSING into TIME_WAIT (in a staggered
// close the responder goes LAST_ACK -> CLOSED and never dwells) and both
// reach CLOSED once the TIME_WAIT timer runs out.
TEST(TcpConformance, SimultaneousCloseBothSidesReachTimeWait) {
  TcpPair t;
  t.warm_arp();
  t.establish();
  if (HasFatalFailure()) return;

  const netsim::TimePoint when = t.net.scheduler().now() + milliseconds(1);
  t.net.scheduler().schedule_at(when, [&] { t.client->close(); });
  t.net.scheduler().schedule_at(when, [&] { t.server->close(); });
  t.net.scheduler().run_until(when + milliseconds(100));

  // Neither FIN acked the other's FIN: the two crossed on the wire.
  const auto fins = t.trace;
  std::vector<SeenSegment> fin_segs;
  for (const auto& s : fins) {
    if (s.seg.has(TcpSegment::kFin)) fin_segs.push_back(s);
  }
  ASSERT_EQ(fin_segs.size(), 2u);
  EXPECT_EQ(fin_segs[0].at, fin_segs[1].at);  // emitted the same instant
  EXPECT_EQ(fin_segs[0].seg.ack, fin_segs[1].seg.seq);
  EXPECT_EQ(fin_segs[1].seg.ack, fin_segs[0].seg.seq);

  EXPECT_EQ(t.client->state(), TcpState::kTimeWait);
  EXPECT_EQ(t.server->state(), TcpState::kTimeWait);

  t.net.scheduler().run();  // TIME_WAIT dwell (1 s) expires
  EXPECT_EQ(t.client->state(), TcpState::kClosed);
  EXPECT_EQ(t.server->state(), TcpState::kClosed);
  EXPECT_EQ(t.client->stats().retransmits, 0u);
  EXPECT_EQ(t.server->stats().retransmits, 0u);
}

// Scenario: a checksum-valid segment whose sequence range sits far outside
// the receive window must be ignored -- no delivery, no state change --
// except for the re-synchronizing ack RFC 793 requires.
TEST(TcpConformance, OutOfWindowSegmentIgnoredWithResyncAck) {
  TcpPair t;
  t.warm_arp();
  t.establish();
  if (HasFatalFailure()) return;
  const std::uint64_t delivered_before = t.server->stats().bytes_received;

  // Craft a valid segment 200000 bytes above rcv_nxt (window is 65535) and
  // inject it raw onto the LAN, bypassing the client socket.
  TcpSegment stray;
  stray.src_port = kClientPort;
  stray.dst_port = kServerPort;
  stray.seq = 1 + 200000;  // client iss = 0 -> rcv_nxt at the server is 1
  stray.ack = 1;
  stray.flags = TcpSegment::kAck;
  stray.window = 0xFFFF;
  stray.payload = util::to_bytes("zz");
  Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  ip.src = t.a->ip();
  ip.dst = t.b->ip();
  const util::ByteBuffer packet =
      ip.encode(encode_tcp(t.a->ip(), t.b->ip(), stray));
  t.lan->broadcast(ether::Frame::ethernet2(t.b->nic().mac(), t.a->nic().mac(),
                                           ether::EtherType::kIpv4, packet),
                   nullptr);
  t.net.scheduler().run();

  EXPECT_EQ(t.server->stats().out_of_window_segments, 1u);
  EXPECT_EQ(t.server->stats().bytes_received, delivered_before);
  EXPECT_EQ(t.server->state(), TcpState::kEstablished);
  EXPECT_EQ(t.client->state(), TcpState::kEstablished);

  // The only response on the wire is the server's re-sync ack pointing at
  // the unmoved rcv_nxt.
  const auto acks = t.sent_by(*t.b, [](const TcpSegment& s) {
    return s.has(TcpSegment::kAck) && s.payload.empty();
  });
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].seg.ack, 1u);
  EXPECT_FALSE(acks[0].seg.has(TcpSegment::kRst));
}

// ------------------------------------------------------ host stack surface

TEST(TcpHostStack, StaggeredCloseDeliversFinAndFreesThePort) {
  TcpPair t;
  t.warm_arp();
  t.establish();
  if (HasFatalFailure()) return;

  bool server_saw_fin = false;
  bool client_closed = false;
  t.server->set_on_peer_fin([&] { server_saw_fin = true; });
  t.client->set_on_closed([&] { client_closed = true; });

  t.client->send(util::to_bytes("last words"));
  t.client->close();
  t.net.scheduler().run_until(t.net.scheduler().now() + milliseconds(100));
  EXPECT_TRUE(server_saw_fin);
  EXPECT_EQ(t.server_received, "last words");
  EXPECT_EQ(t.server->state(), TcpState::kCloseWait);  // until it closes too
  t.server->close();
  t.net.scheduler().run();
  EXPECT_EQ(t.server->state(), TcpState::kClosed);  // LAST_ACK path: no dwell
  EXPECT_EQ(t.client->state(), TcpState::kClosed);  // TIME_WAIT expired
  EXPECT_TRUE(client_closed);
}

TEST(TcpHostStack, DuplicateConnectAndListenThrow) {
  TcpPair t;
  t.b->tcp_listen(kServerPort, [](TcpSocket&) {});
  EXPECT_THROW(t.b->tcp_listen(kServerPort, [](TcpSocket&) {}),
               std::invalid_argument);
  t.a->tcp_connect(t.b->ip(), kServerPort, kClientPort);
  EXPECT_THROW(t.a->tcp_connect(t.b->ip(), kServerPort, kClientPort),
               std::invalid_argument);
  t.net.scheduler().run();
}

TEST(TcpHostStack, SegmentWithNoListenerIsCountedAndDropped) {
  TcpPair t;
  t.warm_arp();
  TcpSegment syn;
  syn.src_port = kClientPort;
  syn.dst_port = 7777;  // nobody listens here
  syn.flags = TcpSegment::kSyn;
  syn.window = 0xFFFF;
  Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  ip.src = t.a->ip();
  ip.dst = t.b->ip();
  const util::ByteBuffer packet =
      ip.encode(encode_tcp(t.a->ip(), t.b->ip(), syn));
  t.lan->broadcast(ether::Frame::ethernet2(t.b->nic().mac(), t.a->nic().mac(),
                                           ether::EtherType::kIpv4, packet),
                   nullptr);
  t.net.scheduler().run();
  EXPECT_EQ(t.b->stats().tcp_no_socket_drops, 1u);
  EXPECT_EQ(t.b->stats().tcp_delivered, 0u);
}

}  // namespace
}  // namespace ab::stack
