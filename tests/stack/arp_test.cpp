#include "src/stack/arp.h"

#include <gtest/gtest.h>

namespace ab::stack {
namespace {

const ether::MacAddress kMacA({0x02, 0, 0, 0, 0, 1});
const ether::MacAddress kMacB({0x02, 0, 0, 0, 0, 2});
const Ipv4Addr kIpA(10, 0, 0, 1);
const Ipv4Addr kIpB(10, 0, 0, 2);

TEST(Arp, RequestRoundTrip) {
  const ArpPacket req = ArpPacket::request(kMacA, kIpA, kIpB);
  const auto back = ArpPacket::decode(req.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, ArpOp::kRequest);
  EXPECT_EQ(back->sender_mac, kMacA);
  EXPECT_EQ(back->sender_ip, kIpA);
  EXPECT_TRUE(back->target_mac.is_zero());
  EXPECT_EQ(back->target_ip, kIpB);
}

TEST(Arp, ReplyAnswersTheRequest) {
  const ArpPacket req = ArpPacket::request(kMacA, kIpA, kIpB);
  const ArpPacket reply = req.make_reply(kMacB);
  EXPECT_EQ(reply.op, ArpOp::kReply);
  EXPECT_EQ(reply.sender_mac, kMacB);
  EXPECT_EQ(reply.sender_ip, kIpB);
  EXPECT_EQ(reply.target_mac, kMacA);
  EXPECT_EQ(reply.target_ip, kIpA);
  const auto back = ArpPacket::decode(reply.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, ArpOp::kReply);
}

TEST(Arp, DecodeRejectsMalformed) {
  EXPECT_FALSE(ArpPacket::decode(util::ByteBuffer(10, 0)).has_value());

  ArpPacket req = ArpPacket::request(kMacA, kIpA, kIpB);
  util::ByteBuffer wire = req.encode();
  wire[0] = 0x00;
  wire[1] = 0x02;  // not Ethernet htype
  EXPECT_FALSE(ArpPacket::decode(wire).has_value());

  wire = req.encode();
  wire[6] = 0;
  wire[7] = 9;  // unknown op
  EXPECT_FALSE(ArpPacket::decode(wire).has_value());
}

TEST(ArpCache, InsertLookup) {
  ArpCache cache;
  const netsim::TimePoint t0{};
  EXPECT_FALSE(cache.lookup(kIpA, t0).has_value());
  cache.insert(kIpA, kMacA, t0);
  const auto hit = cache.lookup(kIpA, t0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, kMacA);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ArpCache, EntriesExpire) {
  ArpCache cache(netsim::seconds(60));
  const netsim::TimePoint t0{};
  cache.insert(kIpA, kMacA, t0);
  EXPECT_TRUE(cache.lookup(kIpA, t0 + netsim::seconds(59)).has_value());
  EXPECT_FALSE(cache.lookup(kIpA, t0 + netsim::seconds(61)).has_value());
}

TEST(ArpCache, ReinsertionRefreshes) {
  ArpCache cache(netsim::seconds(60));
  const netsim::TimePoint t0{};
  cache.insert(kIpA, kMacA, t0);
  cache.insert(kIpA, kMacB, t0 + netsim::seconds(50));
  const auto hit = cache.lookup(kIpA, t0 + netsim::seconds(100));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, kMacB);  // refreshed and updated
}

TEST(ArpCache, ZeroTtlNeverExpires) {
  ArpCache cache;
  const netsim::TimePoint t0{};
  cache.insert(kIpA, kMacA, t0);
  EXPECT_TRUE(cache.lookup(kIpA, t0 + netsim::seconds(100000)).has_value());
}

TEST(ArpCache, InsertUnlessFreshSuppressesIdenticalMappingInsideTheWindow) {
  ArpCache cache;
  const netsim::TimePoint t0{};
  const netsim::Duration window = netsim::milliseconds(10);
  EXPECT_TRUE(cache.insert_unless_fresh(kIpA, kMacA, t0, window));
  // A flooded duplicate 2 ms later: suppressed.
  EXPECT_FALSE(
      cache.insert_unless_fresh(kIpA, kMacA, t0 + netsim::milliseconds(2), window));
  // Past the window the same mapping is a genuine refresh.
  EXPECT_TRUE(
      cache.insert_unless_fresh(kIpA, kMacA, t0 + netsim::milliseconds(11), window));
}

TEST(ArpCache, InsertUnlessFreshRewritesAChangedMacImmediately) {
  // The station really moved: a different MAC inside the window is not a
  // duplicate and must take effect at once.
  ArpCache cache;
  const netsim::TimePoint t0{};
  const netsim::Duration window = netsim::milliseconds(10);
  EXPECT_TRUE(cache.insert_unless_fresh(kIpA, kMacA, t0, window));
  EXPECT_TRUE(
      cache.insert_unless_fresh(kIpA, kMacB, t0 + netsim::milliseconds(1), window));
  EXPECT_EQ(*cache.lookup(kIpA, t0 + netsim::milliseconds(1)), kMacB);
}

TEST(ArpCache, SuppressedDuplicateKeepsTheOriginalAge) {
  // The bug being fixed: every flooded copy used to rewrite the entry and
  // silently reset its age. A suppressed duplicate must leave the original
  // insertion time in place, so expiry still counts from the FIRST copy.
  ArpCache cache(netsim::milliseconds(20));  // ttl
  const netsim::TimePoint t0{};
  const netsim::Duration window = netsim::milliseconds(10);
  EXPECT_TRUE(cache.insert_unless_fresh(kIpA, kMacA, t0, window));
  EXPECT_FALSE(
      cache.insert_unless_fresh(kIpA, kMacA, t0 + netsim::milliseconds(5), window));
  // Had the duplicate rewritten the entry, it would live until t0+25ms.
  EXPECT_TRUE(cache.lookup(kIpA, t0 + netsim::milliseconds(19)).has_value());
  EXPECT_FALSE(cache.lookup(kIpA, t0 + netsim::milliseconds(21)).has_value());
}

}  // namespace
}  // namespace ab::stack
