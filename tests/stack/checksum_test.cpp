#include "src/stack/checksum.h"

#include <gtest/gtest.h>

namespace ab::stack {
namespace {

TEST(InternetChecksum, Rfc1071WorkedExample) {
  // RFC 1071 section 3 example: words 0x0001 0xf203 0xf4f5 0xf6f7.
  const util::ByteBuffer data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x2ddf0 -> fold -> 0xddf2 -> complement -> 0x220d.
  EXPECT_EQ(internet_checksum(data), 0x220D);
}

TEST(InternetChecksum, ZeroBufferChecksumIsAllOnes) {
  const util::ByteBuffer data(8, 0x00);
  EXPECT_EQ(internet_checksum(data), 0xFFFF);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const util::ByteBuffer even = {0x12, 0x34, 0xAB, 0x00};
  const util::ByteBuffer odd = {0x12, 0x34, 0xAB};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(InternetChecksum, VerificationOfSelfChecksummedBuffer) {
  // Compute a checksum, embed it, verify the sum over the whole buffer.
  util::ByteBuffer data = {0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x00, 0x00,
                           0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                           0x0a, 0x00, 0x00, 0x02};
  const std::uint16_t csum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(csum >> 8);
  data[11] = static_cast<std::uint8_t>(csum);
  EXPECT_TRUE(checksum_ok(data));
  data[12] ^= 0x01;
  EXPECT_FALSE(checksum_ok(data));
}

TEST(InternetChecksum, IncrementalWordFeeding) {
  InternetChecksum a;
  a.update_word(0x0001);
  a.update_word(0xf203);
  a.update_word(0xf4f5);
  a.update_word(0xf6f7);
  EXPECT_EQ(a.finish(), 0x220D);
}

TEST(InternetChecksum, EmptyInput) {
  EXPECT_EQ(internet_checksum(util::ByteBuffer{}), 0xFFFF);
}

}  // namespace
}  // namespace ab::stack
