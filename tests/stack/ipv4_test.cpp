#include "src/stack/ipv4.h"

#include <gtest/gtest.h>

#include "src/stack/checksum.h"

namespace ab::stack {
namespace {

TEST(Ipv4Addr, ParseAndFormat) {
  const auto a = Ipv4Addr::parse("10.0.0.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.0.0.1");
  EXPECT_EQ(a->value(), 0x0A000001u);
  EXPECT_EQ(Ipv4Addr(192, 168, 1, 200).to_string(), "192.168.1.200");
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.256").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10..0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1000.0.0.1").has_value());
}

TEST(Ipv4Header, EncodeDecodeRoundTrip) {
  Ipv4Header h;
  h.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  h.src = Ipv4Addr(10, 0, 0, 1);
  h.dst = Ipv4Addr(10, 0, 0, 2);
  h.identification = 0xBEEF;
  h.ttl = 31;
  const util::ByteBuffer payload = {1, 2, 3, 4, 5};
  const util::ByteBuffer wire = h.encode(payload);
  EXPECT_EQ(wire.size(), Ipv4Header::kSize + payload.size());

  const auto back = Ipv4Header::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->header.src, h.src);
  EXPECT_EQ(back->header.dst, h.dst);
  EXPECT_EQ(back->header.identification, 0xBEEF);
  EXPECT_EQ(back->header.ttl, 31);
  EXPECT_EQ(back->header.protocol, 17);
  EXPECT_EQ(back->payload, payload);
  EXPECT_FALSE(back->header.is_fragment());
}

TEST(Ipv4Header, FragmentFieldsRoundTrip) {
  Ipv4Header h;
  h.src = Ipv4Addr(1, 1, 1, 1);
  h.dst = Ipv4Addr(2, 2, 2, 2);
  h.more_fragments = true;
  h.fragment_offset = 185;  // x8 = offset 1480
  const auto back = Ipv4Header::decode(h.encode(util::ByteBuffer{}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->header.more_fragments);
  EXPECT_FALSE(back->header.dont_fragment);
  EXPECT_EQ(back->header.fragment_offset, 185);
  EXPECT_TRUE(back->header.is_fragment());
}

TEST(Ipv4Header, DontFragmentBitRoundTrips) {
  Ipv4Header h;
  h.src = Ipv4Addr(1, 1, 1, 1);
  h.dst = Ipv4Addr(2, 2, 2, 2);
  h.dont_fragment = true;
  const auto back = Ipv4Header::decode(h.encode(util::ByteBuffer{}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->header.dont_fragment);
  EXPECT_FALSE(back->header.is_fragment());
}

TEST(Ipv4Header, DecodeRejectsCorruptChecksum) {
  Ipv4Header h;
  h.src = Ipv4Addr(1, 1, 1, 1);
  h.dst = Ipv4Addr(2, 2, 2, 2);
  util::ByteBuffer wire = h.encode(util::ByteBuffer{9, 9, 9});
  wire[8] ^= 0xFF;  // TTL
  const auto back = Ipv4Header::decode(wire);
  EXPECT_FALSE(back.has_value());
  EXPECT_NE(back.error().find("checksum"), std::string::npos);
}

TEST(Ipv4Header, DecodeRejectsShortAndWrongVersion) {
  EXPECT_FALSE(Ipv4Header::decode(util::ByteBuffer(10, 0)).has_value());
  Ipv4Header h;
  h.src = Ipv4Addr(1, 1, 1, 1);
  h.dst = Ipv4Addr(2, 2, 2, 2);
  util::ByteBuffer wire = h.encode(util::ByteBuffer{});
  wire[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::decode(wire).has_value());
}

TEST(Ipv4Header, DecodeRejectsBadTotalLength) {
  Ipv4Header h;
  h.src = Ipv4Addr(1, 1, 1, 1);
  h.dst = Ipv4Addr(2, 2, 2, 2);
  util::ByteBuffer wire = h.encode(util::ByteBuffer{1, 2, 3, 4});
  // Claim a total length beyond the buffer; fix the checksum so only the
  // length check can fire.
  wire[2] = 0xFF;
  wire[3] = 0xFF;
  wire[10] = 0;
  wire[11] = 0;
  const std::uint16_t csum =
      internet_checksum(util::ByteView(wire).first(Ipv4Header::kSize));
  wire[10] = static_cast<std::uint8_t>(csum >> 8);
  wire[11] = static_cast<std::uint8_t>(csum);
  EXPECT_FALSE(Ipv4Header::decode(wire).has_value());
}

TEST(Ipv4Header, TrailingEthernetPaddingIsIgnored) {
  // Ethernet pads short frames; decode must honor total_length.
  Ipv4Header h;
  h.src = Ipv4Addr(1, 1, 1, 1);
  h.dst = Ipv4Addr(2, 2, 2, 2);
  util::ByteBuffer wire = h.encode(util::ByteBuffer{0xAA});
  wire.resize(wire.size() + 25, 0);  // simulated padding
  const auto back = Ipv4Header::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, (util::ByteBuffer{0xAA}));
}

TEST(Ipv4Header, EncodeRejectsOversizedPacket) {
  Ipv4Header h;
  h.src = Ipv4Addr(1, 1, 1, 1);
  h.dst = Ipv4Addr(2, 2, 2, 2);
  EXPECT_THROW((void)h.encode(util::ByteBuffer(0x10000, 0)), std::length_error);
}

}  // namespace
}  // namespace ab::stack
