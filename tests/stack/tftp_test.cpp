// TFTP state machines, exercised over a lossless and a lossy in-memory
// "wire" between client and server (no simulator NICs needed).
#include "src/stack/tftp.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/util/rng.h"

namespace ab::stack {
namespace {

const Ipv4Addr kServerIp(10, 0, 0, 1);
const Ipv4Addr kClientIp(10, 0, 0, 2);

TEST(TftpCodec, RequestRoundTrip) {
  const TftpRequest req{TftpOp::kWrq, "switchlet.img", "octet"};
  const auto back = decode_tftp(encode_tftp(TftpPacket{req}));
  ASSERT_TRUE(back.has_value());
  const auto* r = std::get_if<TftpRequest>(&back.value());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->op, TftpOp::kWrq);
  EXPECT_EQ(r->filename, "switchlet.img");
  EXPECT_EQ(r->mode, "octet");
}

TEST(TftpCodec, DataAckErrorRoundTrip) {
  {
    const TftpData d{7, util::ByteBuffer(100, 0xAB)};
    const auto back = decode_tftp(encode_tftp(TftpPacket{d}));
    ASSERT_TRUE(back.has_value());
    const auto* p = std::get_if<TftpData>(&back.value());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->block, 7);
    EXPECT_EQ(p->data.size(), 100u);
  }
  {
    const auto back = decode_tftp(encode_tftp(TftpPacket{TftpAck{9}}));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(std::get<TftpAck>(back.value()).block, 9);
  }
  {
    const TftpErrorPacket e{TftpError::kAccessViolation, "denied"};
    const auto back = decode_tftp(encode_tftp(TftpPacket{e}));
    ASSERT_TRUE(back.has_value());
    const auto& err = std::get<TftpErrorPacket>(back.value());
    EXPECT_EQ(err.code, TftpError::kAccessViolation);
    EXPECT_EQ(err.message, "denied");
  }
}

TEST(TftpCodec, RejectsMalformed) {
  EXPECT_FALSE(decode_tftp(util::ByteBuffer{}).has_value());
  EXPECT_FALSE(decode_tftp(util::ByteBuffer{0}).has_value());
  EXPECT_FALSE(decode_tftp(util::ByteBuffer{0, 99}).has_value());  // unknown op
  // WRQ missing the mode string terminator.
  EXPECT_FALSE(decode_tftp(util::ByteBuffer{0, 2, 'f', 0, 'o'}).has_value());
  // Oversized DATA.
  TftpData big{1, util::ByteBuffer(kTftpBlockSize + 1, 0)};
  EXPECT_THROW((void)encode_tftp(TftpPacket{big}), std::length_error);
}

/// A test harness wiring client and server over a direct (optionally
/// lossy) datagram channel with simulated time.
class TftpHarness {
 public:
  explicit TftpHarness(double loss = 0.0, std::uint64_t seed = 1)
      : rng_(seed),
        loss_(loss),
        server_(
            scheduler_,
            [this](const TftpEndpoint& peer, std::uint16_t local, util::ByteBuffer b) {
              deliver_to_client(peer, local, std::move(b));
            },
            [this](const std::string& name, util::ByteBuffer bytes) {
              received[name] = std::move(bytes);
            }),
        client_(scheduler_, [this](const TftpEndpoint& peer, std::uint16_t local,
                                   util::ByteBuffer b) {
          deliver_to_server(peer, local, std::move(b));
        }) {}

  void deliver_to_server(const TftpEndpoint& server_ep, std::uint16_t client_port,
                         util::ByteBuffer bytes) {
    if (rng_.chance(loss_)) return;
    scheduler_.schedule_after(netsim::milliseconds(1),
                              [this, client_port, bytes = std::move(bytes)] {
                                server_.on_datagram({kClientIp, client_port},
                                                    TftpServer::kWellKnownPort, bytes);
                              });
    (void)server_ep;
  }

  void deliver_to_client(const TftpEndpoint& client_ep, std::uint16_t server_port,
                         util::ByteBuffer bytes) {
    if (rng_.chance(loss_)) return;
    scheduler_.schedule_after(netsim::milliseconds(1),
                              [this, client_ep, server_port, bytes = std::move(bytes)] {
                                client_.on_datagram({kServerIp, server_port},
                                                    client_ep.port, bytes);
                              });
  }

  netsim::Scheduler scheduler_;
  util::Rng rng_;
  double loss_;
  std::map<std::string, util::ByteBuffer> received;
  TftpServer server_;
  TftpClient client_;
};

TEST(Tftp, TransfersAFileEndToEnd) {
  TftpHarness h;
  util::ByteBuffer contents(1500, 0x5C);
  bool done = false;
  h.client_.put({kServerIp, TftpServer::kWellKnownPort}, "mod.img", contents,
                [&](bool ok, const std::string& err) {
                  done = true;
                  EXPECT_TRUE(ok) << err;
                });
  h.scheduler_.run();
  EXPECT_TRUE(done);
  ASSERT_EQ(h.received.count("mod.img"), 1u);
  EXPECT_EQ(h.received["mod.img"], contents);
  EXPECT_EQ(h.server_.stats().transfers_completed, 1u);
  EXPECT_EQ(h.client_.active_transfers(), 0u);
  EXPECT_EQ(h.server_.active_transfers(), 0u);
}

TEST(Tftp, EmptyFileTransfers) {
  TftpHarness h;
  bool ok_seen = false;
  h.client_.put({kServerIp, TftpServer::kWellKnownPort}, "empty", {},
                [&](bool ok, const std::string&) { ok_seen = ok; });
  h.scheduler_.run();
  EXPECT_TRUE(ok_seen);
  ASSERT_EQ(h.received.count("empty"), 1u);
  EXPECT_TRUE(h.received["empty"].empty());
}

TEST(Tftp, ExactMultipleOf512GetsEmptyFinalBlock) {
  TftpHarness h;
  util::ByteBuffer contents(1024, 0x77);
  bool ok_seen = false;
  h.client_.put({kServerIp, TftpServer::kWellKnownPort}, "x1024", contents,
                [&](bool ok, const std::string&) { ok_seen = ok; });
  h.scheduler_.run();
  EXPECT_TRUE(ok_seen);
  EXPECT_EQ(h.received["x1024"].size(), 1024u);
}

TEST(Tftp, LargeFileManyBlocks) {
  TftpHarness h;
  util::ByteBuffer contents(100 * 1024, 0);
  for (std::size_t i = 0; i < contents.size(); ++i) {
    contents[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  bool ok_seen = false;
  h.client_.put({kServerIp, TftpServer::kWellKnownPort}, "big", contents,
                [&](bool ok, const std::string&) { ok_seen = ok; });
  h.scheduler_.run();
  EXPECT_TRUE(ok_seen);
  EXPECT_EQ(h.received["big"], contents);
}

TEST(Tftp, SurvivesPacketLossViaRetransmission) {
  TftpHarness h(/*loss=*/0.15, /*seed=*/7);
  util::ByteBuffer contents(5000, 0xE1);
  bool done = false, ok_seen = false;
  h.client_.put({kServerIp, TftpServer::kWellKnownPort}, "lossy", contents,
                [&](bool ok, const std::string&) {
                  done = true;
                  ok_seen = ok;
                });
  h.scheduler_.run();
  EXPECT_TRUE(done);
  ASSERT_TRUE(ok_seen);
  EXPECT_EQ(h.received["lossy"], contents);
}

TEST(Tftp, TotalLossTimesOutWithError) {
  TftpHarness h(/*loss=*/1.0);
  bool done = false, ok_seen = true;
  std::string error;
  h.client_.put({kServerIp, TftpServer::kWellKnownPort}, "void", {1, 2, 3},
                [&](bool ok, const std::string& err) {
                  done = true;
                  ok_seen = ok;
                  error = err;
                });
  h.scheduler_.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok_seen);
  EXPECT_NE(error.find("timed out"), std::string::npos);
}

TEST(Tftp, ServerRefusesReadRequests) {
  // The paper's loader "only services write requests".
  netsim::Scheduler sched;
  std::vector<util::ByteBuffer> to_client;
  TftpServer server(
      sched,
      [&](const TftpEndpoint&, std::uint16_t, util::ByteBuffer b) {
        to_client.push_back(std::move(b));
      },
      [](const std::string&, util::ByteBuffer) { FAIL() << "no file expected"; });
  server.on_datagram({kClientIp, 5000}, TftpServer::kWellKnownPort,
                     encode_tftp(TftpPacket{TftpRequest{TftpOp::kRrq, "f", "octet"}}));
  ASSERT_EQ(to_client.size(), 1u);
  const auto reply = decode_tftp(to_client[0]);
  ASSERT_TRUE(reply.has_value());
  const auto* err = std::get_if<TftpErrorPacket>(&reply.value());
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, TftpError::kAccessViolation);
  EXPECT_EQ(server.stats().rejected_rrq, 1u);
}

TEST(Tftp, ServerRefusesNonOctetMode) {
  // "...in binary format": netascii is refused.
  netsim::Scheduler sched;
  std::vector<util::ByteBuffer> to_client;
  TftpServer server(
      sched,
      [&](const TftpEndpoint&, std::uint16_t, util::ByteBuffer b) {
        to_client.push_back(std::move(b));
      },
      [](const std::string&, util::ByteBuffer) { FAIL() << "no file expected"; });
  server.on_datagram(
      {kClientIp, 5000}, TftpServer::kWellKnownPort,
      encode_tftp(TftpPacket{TftpRequest{TftpOp::kWrq, "f", "netascii"}}));
  ASSERT_EQ(to_client.size(), 1u);
  const auto reply = decode_tftp(to_client[0]);
  ASSERT_TRUE(reply.has_value());
  const auto* err = std::get_if<TftpErrorPacket>(&reply.value());
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, TftpError::kIllegalOperation);
  EXPECT_EQ(server.stats().rejected_mode, 1u);
}

TEST(Tftp, ServerAcceptsOctetModeCaseInsensitively) {
  netsim::Scheduler sched;
  std::vector<util::ByteBuffer> to_client;
  TftpServer server(
      sched,
      [&](const TftpEndpoint&, std::uint16_t, util::ByteBuffer b) {
        to_client.push_back(std::move(b));
      },
      [](const std::string&, util::ByteBuffer) {});
  server.on_datagram({kClientIp, 5000}, TftpServer::kWellKnownPort,
                     encode_tftp(TftpPacket{TftpRequest{TftpOp::kWrq, "f", "OCTET"}}));
  ASSERT_EQ(to_client.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<TftpAck>(decode_tftp(to_client[0]).value()));
}

TEST(Tftp, ServerIgnoresDataWithoutTransfer) {
  netsim::Scheduler sched;
  std::vector<util::ByteBuffer> to_client;
  TftpServer server(
      sched,
      [&](const TftpEndpoint&, std::uint16_t, util::ByteBuffer b) {
        to_client.push_back(std::move(b));
      },
      [](const std::string&, util::ByteBuffer) {});
  server.on_datagram({kClientIp, 5000}, TftpServer::kWellKnownPort,
                     encode_tftp(TftpPacket{TftpData{1, {1, 2, 3}}}));
  ASSERT_EQ(to_client.size(), 1u);
  EXPECT_TRUE(
      std::holds_alternative<TftpErrorPacket>(decode_tftp(to_client[0]).value()));
}

TEST(Tftp, ConcurrentTransfersFromDistinctClients) {
  TftpHarness h;
  util::ByteBuffer a(700, 0x01), b(1300, 0x02);
  int completions = 0;
  h.client_.put({kServerIp, TftpServer::kWellKnownPort}, "a", a,
                [&](bool ok, const std::string&) { completions += ok ? 1 : 0; });
  h.client_.put({kServerIp, TftpServer::kWellKnownPort}, "b", b,
                [&](bool ok, const std::string&) { completions += ok ? 1 : 0; });
  h.scheduler_.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(h.received["a"], a);
  EXPECT_EQ(h.received["b"], b);
}

TEST(Tftp, StalledServerTransferIsReaped) {
  netsim::Scheduler sched;
  TftpServer server(
      sched, [](const TftpEndpoint&, std::uint16_t, util::ByteBuffer) {},
      [](const std::string&, util::ByteBuffer) {});
  server.on_datagram({kClientIp, 5000}, TftpServer::kWellKnownPort,
                     encode_tftp(TftpPacket{TftpRequest{TftpOp::kWrq, "f", "octet"}}));
  EXPECT_EQ(server.active_transfers(), 1u);
  sched.run();  // the reaper fires after kTransferTimeout
  EXPECT_EQ(server.active_transfers(), 0u);
  EXPECT_EQ(server.stats().transfers_timed_out, 1u);
}

}  // namespace
}  // namespace ab::stack
