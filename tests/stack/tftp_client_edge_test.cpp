// TFTP client edge cases beyond the happy-path harness: server ERRORs,
// stale ACKs, wrong peers.
#include <gtest/gtest.h>

#include "src/stack/tftp.h"

namespace ab::stack {
namespace {

const Ipv4Addr kServer(10, 0, 0, 1);

struct ClientHarness {
  netsim::Scheduler scheduler;
  std::vector<std::pair<std::uint16_t, util::ByteBuffer>> sent;  // (local port, pkt)
  TftpClient client{scheduler, [this](const TftpEndpoint&, std::uint16_t local,
                                      util::ByteBuffer pkt) {
                      sent.emplace_back(local, std::move(pkt));
                    }};
  bool done = false;
  bool ok = false;
  std::string error;

  std::uint16_t start_put(util::ByteBuffer contents = {1, 2, 3}) {
    client.put({kServer, TftpServer::kWellKnownPort}, "f.img", std::move(contents),
               [this](bool success, const std::string& err) {
                 done = true;
                 ok = success;
                 error = err;
               });
    return sent.at(0).first;
  }
};

TEST(TftpClientEdge, ServerErrorAbortsTransfer) {
  ClientHarness h;
  const std::uint16_t port = h.start_put();
  h.client.on_datagram({kServer, TftpServer::kWellKnownPort}, port,
                       encode_tftp(TftpErrorPacket{TftpError::kAccessViolation,
                                                   "denied"}));
  EXPECT_TRUE(h.done);
  EXPECT_FALSE(h.ok);
  EXPECT_NE(h.error.find("denied"), std::string::npos);
  EXPECT_EQ(h.client.active_transfers(), 0u);
}

TEST(TftpClientEdge, StaleAckIsIgnored) {
  ClientHarness h;
  const std::uint16_t port = h.start_put();
  const std::size_t sent_before = h.sent.size();
  // ACK for block 7 while we are waiting for ACK 0: ignored.
  h.client.on_datagram({kServer, TftpServer::kWellKnownPort}, port,
                       encode_tftp(TftpAck{7}));
  EXPECT_EQ(h.sent.size(), sent_before);
  EXPECT_FALSE(h.done);
}

TEST(TftpClientEdge, DatagramFromWrongServerIgnored) {
  ClientHarness h;
  const std::uint16_t port = h.start_put();
  h.client.on_datagram({Ipv4Addr(9, 9, 9, 9), TftpServer::kWellKnownPort}, port,
                       encode_tftp(TftpAck{0}));
  EXPECT_FALSE(h.done);  // impostor's ACK did not advance the transfer
}

TEST(TftpClientEdge, DatagramForUnknownPortIgnored) {
  ClientHarness h;
  h.start_put();
  h.client.on_datagram({kServer, TftpServer::kWellKnownPort}, 1,
                       encode_tftp(TftpAck{0}));
  EXPECT_FALSE(h.done);
}

TEST(TftpClientEdge, AckDrivesDataThenCompletion) {
  ClientHarness h;
  const std::uint16_t port = h.start_put(util::ByteBuffer(600, 0x5A));
  // ACK the WRQ: client sends DATA 1 (512 bytes).
  h.client.on_datagram({kServer, TftpServer::kWellKnownPort}, port,
                       encode_tftp(TftpAck{0}));
  ASSERT_EQ(h.sent.size(), 2u);
  const auto data1 = decode_tftp(h.sent[1].second);
  ASSERT_TRUE(data1.has_value());
  EXPECT_EQ(std::get<TftpData>(data1.value()).block, 1);
  EXPECT_EQ(std::get<TftpData>(data1.value()).data.size(), 512u);
  // ACK 1: final 88-byte block.
  h.client.on_datagram({kServer, TftpServer::kWellKnownPort}, port,
                       encode_tftp(TftpAck{1}));
  ASSERT_EQ(h.sent.size(), 3u);
  EXPECT_EQ(std::get<TftpData>(decode_tftp(h.sent[2].second).value()).data.size(),
            88u);
  // ACK 2: done.
  h.client.on_datagram({kServer, TftpServer::kWellKnownPort}, port,
                       encode_tftp(TftpAck{2}));
  EXPECT_TRUE(h.done);
  EXPECT_TRUE(h.ok);
}

TEST(TftpClientEdge, NullCompletionRejected) {
  ClientHarness h;
  EXPECT_THROW(h.client.put({kServer, 69}, "x", {}, nullptr), std::invalid_argument);
}

TEST(TftpClientEdge, GarbageDatagramIgnored) {
  ClientHarness h;
  const std::uint16_t port = h.start_put();
  h.client.on_datagram({kServer, TftpServer::kWellKnownPort}, port,
                       util::to_bytes("not tftp at all"));
  EXPECT_FALSE(h.done);
}

}  // namespace
}  // namespace ab::stack
