// End-to-end host stack tests over a single simulated LAN: ARP resolution,
// ping, UDP delivery, fragmentation and reassembly.
#include "src/stack/host_stack.h"

#include <gtest/gtest.h>

#include "src/netsim/network.h"

namespace ab::stack {
namespace {

struct TwoHosts {
  netsim::Network net;
  netsim::LanSegment* lan;
  std::unique_ptr<HostStack> a;
  std::unique_ptr<HostStack> b;

  explicit TwoHosts(HostConfig cfg_a = {}, HostConfig cfg_b = {}) {
    lan = &net.add_segment("lan");
    auto& nic_a = net.add_nic("hostA", *lan);
    auto& nic_b = net.add_nic("hostB", *lan);
    if (cfg_a.ip.is_zero()) cfg_a.ip = Ipv4Addr(10, 0, 0, 1);
    if (cfg_b.ip.is_zero()) cfg_b.ip = Ipv4Addr(10, 0, 0, 2);
    a = std::make_unique<HostStack>(net.scheduler(), nic_a, cfg_a);
    b = std::make_unique<HostStack>(net.scheduler(), nic_b, cfg_b);
  }
};

TEST(HostStack, PingGetsAReply) {
  TwoHosts t;
  std::vector<HostStack::EchoReply> replies;
  t.a->set_echo_handler(
      [&](const HostStack::EchoReply& r) { replies.push_back(r); });
  t.a->send_echo_request(t.b->ip(), 0x77, 1, util::to_bytes("hello"));
  t.net.scheduler().run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].from, t.b->ip());
  EXPECT_EQ(replies[0].id, 0x77);
  EXPECT_EQ(replies[0].seq, 1);
  EXPECT_EQ(util::to_string(replies[0].payload), "hello");
  EXPECT_EQ(t.b->stats().echo_requests_answered, 1u);
}

TEST(HostStack, ArpResolvesOnceThenCaches) {
  TwoHosts t;
  t.a->set_echo_handler([](const HostStack::EchoReply&) {});
  t.a->send_echo_request(t.b->ip(), 1, 1, {});
  t.net.scheduler().run();
  EXPECT_EQ(t.a->stats().arp_requests_sent, 1u);
  t.a->send_echo_request(t.b->ip(), 1, 2, {});
  t.net.scheduler().run();
  // Second ping reuses the cached mapping.
  EXPECT_EQ(t.a->stats().arp_requests_sent, 1u);
  EXPECT_EQ(t.a->stats().echo_replies_received, 2u);
}

TEST(HostStack, ArpGivesUpWhenTargetAbsent) {
  TwoHosts t;
  t.a->send_echo_request(Ipv4Addr(10, 0, 0, 99), 1, 1, {});
  t.net.scheduler().run();
  EXPECT_EQ(t.a->stats().arp_requests_sent, 3u);  // arp_max_tries
  EXPECT_EQ(t.a->stats().unresolved_drops, 1u);
}

TEST(HostStack, UdpDeliveredToBoundPort) {
  TwoHosts t;
  std::vector<UdpDatagram> got;
  Ipv4Addr got_src;
  t.b->bind_udp(4000, [&](Ipv4Addr src, const UdpDatagram& d) {
    got_src = src;
    got.push_back(d);
  });
  t.a->send_udp(t.b->ip(), 5555, 4000, util::to_bytes("datagram"));
  t.net.scheduler().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got_src, t.a->ip());
  EXPECT_EQ(got[0].src_port, 5555);
  EXPECT_EQ(util::to_string(got[0].payload), "datagram");
}

TEST(HostStack, UdpToUnboundPortIsDropped) {
  TwoHosts t;
  t.a->send_udp(t.b->ip(), 1, 4001, util::to_bytes("nobody"));
  t.net.scheduler().run();
  EXPECT_EQ(t.b->stats().udp_delivered, 0u);
}

TEST(HostStack, UnbindStopsDelivery) {
  TwoHosts t;
  int got = 0;
  t.b->bind_udp(4000, [&](Ipv4Addr, const UdpDatagram&) { ++got; });
  t.a->send_udp(t.b->ip(), 1, 4000, {1});
  t.net.scheduler().run();
  t.b->unbind_udp(4000);
  t.a->send_udp(t.b->ip(), 1, 4000, {2});
  t.net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(HostStack, DoubleBindThrows) {
  TwoHosts t;
  t.b->bind_udp(4000, [](Ipv4Addr, const UdpDatagram&) {});
  EXPECT_THROW(t.b->bind_udp(4000, [](Ipv4Addr, const UdpDatagram&) {}),
               std::invalid_argument);
}

TEST(HostStack, LargeDatagramFragmentsAndReassembles) {
  // The paper's ttcp runs used 8 KB writes, "resulting in multiple
  // back-to-back LAN frames".
  TwoHosts t;
  util::ByteBuffer big(8192);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i ^ (i >> 8));
  }
  util::ByteBuffer received;
  t.b->bind_udp(4000, [&](Ipv4Addr, const UdpDatagram& d) { received = d.payload; });
  t.a->send_udp(t.b->ip(), 1, 4000, big);
  t.net.scheduler().run();
  EXPECT_EQ(received, big);
  EXPECT_GT(t.a->stats().fragments_sent, 5u);  // 8200/1480 -> 6 fragments
  EXPECT_EQ(t.b->stats().reassemblies_done, 1u);
}

TEST(HostStack, MissingFragmentTimesOutReassembly) {
  netsim::Network net;
  auto& lan = net.add_segment("lan");
  auto& nic_a = net.add_nic("a", lan);
  auto& nic_b = net.add_nic("b", lan);
  HostConfig ca;
  ca.ip = Ipv4Addr(10, 0, 0, 1);
  HostStack a(net.scheduler(), nic_a, ca);
  HostConfig cb;
  cb.ip = Ipv4Addr(10, 0, 0, 2);
  HostStack b(net.scheduler(), nic_b, cb);

  // Prime ARP so we can splice a raw fragment directly.
  a.set_echo_handler([](const HostStack::EchoReply&) {});
  a.send_echo_request(b.ip(), 1, 1, {});
  net.scheduler().run();

  // Hand-build a lone first-fragment (more_fragments set, no follow-up).
  Ipv4Header h;
  h.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  h.src = a.ip();
  h.dst = b.ip();
  h.identification = 0x999;
  h.more_fragments = true;
  nic_a.transmit(ether::Frame::ethernet2(nic_b.mac(), nic_a.mac(),
                                         ether::EtherType::kIpv4,
                                         h.encode(util::ByteBuffer(64, 0))));
  net.scheduler().run();
  EXPECT_EQ(b.stats().reassemblies_dropped, 1u);
  EXPECT_EQ(b.stats().reassemblies_done, 0u);
}

TEST(HostStack, TxCostModelDelaysTransmission) {
  HostConfig slow;
  slow.ip = Ipv4Addr(10, 0, 0, 1);
  slow.tx_cost.per_frame = netsim::milliseconds(10);
  TwoHosts t(slow);
  std::vector<HostStack::EchoReply> replies;
  netsim::TimePoint reply_at{};
  t.a->set_echo_handler([&](const HostStack::EchoReply&) { reply_at = t.net.now(); });
  t.a->send_echo_request(t.b->ip(), 1, 1, {});
  t.net.scheduler().run();
  // Two charged frames on host A (ARP request + ICMP request): >= 20 ms.
  EXPECT_GE(reply_at.time_since_epoch(), netsim::milliseconds(20));
}

TEST(HostStack, RejectsInvalidConfig) {
  netsim::Network net;
  auto& lan = net.add_segment("lan");
  auto& nic = net.add_nic("x", lan);
  HostConfig bad;  // zero IP
  EXPECT_THROW(HostStack(net.scheduler(), nic, bad), std::invalid_argument);
  HostConfig tiny;
  tiny.ip = Ipv4Addr(1, 2, 3, 4);
  tiny.mtu = 8;
  EXPECT_THROW(HostStack(net.scheduler(), nic, tiny), std::invalid_argument);
}

TEST(HostStack, FloodedDuplicateArpReplyIsCountedAndIgnored) {
  // While the extended LAN is loopy or converging, a flood delivers the
  // same ARP reply once per surviving path. Only the first copy may act;
  // the rest are counted duplicates that must not rewrite the cache.
  TwoHosts t;
  t.a->set_echo_handler([](const HostStack::EchoReply&) {});
  t.a->send_echo_request(t.b->ip(), 1, 1, {});
  t.net.scheduler().run();  // resolves b, caches the mapping
  EXPECT_EQ(t.a->stats().arp_duplicate_replies, 0u);

  // Replay a three-copy burst of b's reply, microseconds apart (what a
  // loopy flood delivers). The cached mapping is by now older than the
  // dedupe window (run() drained through the 500 ms ARP retry no-op), so
  // the first copy is a legitimate refresh; the two behind it are
  // duplicates and must be suppressed.
  ArpPacket dup;
  dup.op = ArpOp::kReply;
  dup.sender_mac = t.b->nic().mac();
  dup.sender_ip = t.b->ip();
  dup.target_mac = t.a->nic().mac();
  dup.target_ip = t.a->ip();
  for (int i = 0; i < 3; ++i) {
    t.b->nic().transmit(ether::Frame::ethernet2(
        t.a->nic().mac(), t.b->nic().mac(), ether::EtherType::kArp, dup.encode()));
  }
  t.net.scheduler().run();
  EXPECT_EQ(t.a->stats().arp_duplicate_replies, 2u);
  // The mapping still works (the original entry is intact).
  t.a->send_echo_request(t.b->ip(), 1, 2, {});
  t.net.scheduler().run();
  EXPECT_EQ(t.a->stats().arp_requests_sent, 1u);
  EXPECT_EQ(t.a->stats().echo_replies_received, 2u);
}

TEST(HostStack, DuplicateArpRequestInsideTheWindowDrawsOneReply) {
  // Duplicate flooded copies of the same request must not each draw a
  // reply (the netloader's suppression, applied to the host stack); a
  // genuine retry after the window is answered again.
  netsim::Network net;
  auto& lan = net.add_segment("lan");
  auto& nic_b = net.add_nic("hostB", lan);
  HostConfig cfg;
  cfg.ip = Ipv4Addr(10, 0, 0, 2);
  HostStack b(net.scheduler(), nic_b, cfg);

  auto& probe = net.add_nic("probe", lan);
  const ArpPacket req =
      ArpPacket::request(probe.mac(), Ipv4Addr(10, 0, 0, 7), b.ip());
  const auto send_copy = [&] {
    probe.transmit(ether::Frame::ethernet2(ether::MacAddress::broadcast(),
                                           probe.mac(), ether::EtherType::kArp,
                                           req.encode()));
  };
  send_copy();
  send_copy();  // flooded duplicate, microseconds apart
  net.scheduler().run();
  EXPECT_EQ(b.stats().arp_replies_sent, 1u);
  EXPECT_EQ(b.stats().arp_duplicate_replies, 1u);

  net.scheduler().run_for(netsim::milliseconds(20));  // past the window
  send_copy();  // a real retry
  net.scheduler().run();
  EXPECT_EQ(b.stats().arp_replies_sent, 2u);
  EXPECT_EQ(b.stats().arp_duplicate_replies, 1u);
}

TEST(HostStack, GenuineRequestRightAfterAReplyIsStillAnswered) {
  // Dedupe must key the reply decision on when we last ANSWERED a sender,
  // not on the cache mapping: an unsolicited reply from X followed
  // microseconds later by X's genuine request (X never heard anything from
  // us, its own entry may just have expired) is NOT a duplicate and must
  // be answered, even though both carry the identical sender mapping.
  netsim::Network net;
  auto& lan = net.add_segment("lan");
  auto& nic_b = net.add_nic("hostB", lan);
  HostConfig cfg;
  cfg.ip = Ipv4Addr(10, 0, 0, 2);
  HostStack b(net.scheduler(), nic_b, cfg);

  auto& probe = net.add_nic("probe", lan);
  const Ipv4Addr probe_ip(10, 0, 0, 7);
  ArpPacket reply;
  reply.op = ArpOp::kReply;
  reply.sender_mac = probe.mac();
  reply.sender_ip = probe_ip;
  reply.target_mac = nic_b.mac();
  reply.target_ip = b.ip();
  probe.transmit(ether::Frame::ethernet2(nic_b.mac(), probe.mac(),
                                         ether::EtherType::kArp, reply.encode()));
  const ArpPacket req = ArpPacket::request(probe.mac(), probe_ip, b.ip());
  probe.transmit(ether::Frame::ethernet2(ether::MacAddress::broadcast(),
                                         probe.mac(), ether::EtherType::kArp,
                                         req.encode()));
  net.scheduler().run();
  EXPECT_EQ(b.stats().arp_replies_sent, 1u);
  EXPECT_EQ(b.stats().arp_duplicate_replies, 0u);
}

TEST(HostStack, PingSweepAcrossSizes) {
  // Latency-bench smoke: all Fig. 9 packet sizes complete.
  TwoHosts t;
  int replies = 0;
  t.a->set_echo_handler([&](const HostStack::EchoReply&) { ++replies; });
  std::uint16_t seq = 0;
  for (std::size_t size : {32u, 512u, 1024u, 2048u, 4096u}) {
    t.a->send_echo_request(t.b->ip(), 9, ++seq, util::ByteBuffer(size, 0xA5));
  }
  t.net.scheduler().run();
  EXPECT_EQ(replies, 5);
}

}  // namespace
}  // namespace ab::stack
