#include "src/stack/icmp.h"

#include <gtest/gtest.h>

#include "src/stack/checksum.h"

namespace ab::stack {
namespace {

TEST(Icmp, EchoRequestRoundTrip) {
  IcmpEcho e;
  e.type = IcmpType::kEchoRequest;
  e.id = 0x1234;
  e.seq = 7;
  e.payload = util::to_bytes("ping payload");
  const auto back = IcmpEcho::decode(e.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_request());
  EXPECT_EQ(back->id, 0x1234);
  EXPECT_EQ(back->seq, 7);
  EXPECT_EQ(back->payload, e.payload);
}

TEST(Icmp, ReplyPreservesIdSeqPayload) {
  IcmpEcho e;
  e.id = 42;
  e.seq = 9;
  e.payload = {1, 2, 3};
  const IcmpEcho reply = e.make_reply();
  EXPECT_EQ(reply.type, IcmpType::kEchoReply);
  EXPECT_FALSE(reply.is_request());
  EXPECT_EQ(reply.id, 42);
  EXPECT_EQ(reply.seq, 9);
  EXPECT_EQ(reply.payload, e.payload);
}

TEST(Icmp, ChecksumDetectsCorruption) {
  IcmpEcho e;
  e.id = 1;
  e.seq = 1;
  e.payload = {1, 2, 3, 4};
  util::ByteBuffer wire = e.encode();
  wire[8] ^= 0x10;
  EXPECT_FALSE(IcmpEcho::decode(wire).has_value());
}

TEST(Icmp, DecodeRejectsNonEchoTypes) {
  IcmpEcho e;
  util::ByteBuffer wire = e.encode();
  wire[0] = 3;  // destination unreachable
  // Fix checksum so the type check is what fires.
  wire[2] = 0;
  wire[3] = 0;
  const std::uint16_t csum = internet_checksum(wire);
  wire[2] = static_cast<std::uint8_t>(csum >> 8);
  wire[3] = static_cast<std::uint8_t>(csum);
  const auto back = IcmpEcho::decode(wire);
  EXPECT_FALSE(back.has_value());
  EXPECT_NE(back.error().find("type"), std::string::npos);
}

TEST(Icmp, DecodeRejectsShortMessage) {
  EXPECT_FALSE(IcmpEcho::decode(util::ByteBuffer{8, 0, 0}).has_value());
}

TEST(Icmp, EmptyPayloadRoundTrips) {
  IcmpEcho e;
  e.id = 5;
  e.seq = 6;
  const auto back = IcmpEcho::decode(e.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

}  // namespace
}  // namespace ab::stack
