#include "src/stack/udp.h"

#include <gtest/gtest.h>

namespace ab::stack {
namespace {

const Ipv4Addr kSrc(10, 0, 0, 1);
const Ipv4Addr kDst(10, 0, 0, 2);

TEST(Udp, EncodeDecodeRoundTrip) {
  UdpDatagram d;
  d.src_port = 12345;
  d.dst_port = 69;
  d.payload = {1, 2, 3, 4, 5, 6, 7};
  const util::ByteBuffer wire = encode_udp(kSrc, kDst, d);
  EXPECT_EQ(wire.size(), 8u + d.payload.size());
  const auto back = decode_udp(kSrc, kDst, wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src_port, 12345);
  EXPECT_EQ(back->dst_port, 69);
  EXPECT_EQ(back->payload, d.payload);
}

TEST(Udp, EmptyPayloadRoundTrips) {
  UdpDatagram d;
  d.src_port = 1;
  d.dst_port = 2;
  const auto back = decode_udp(kSrc, kDst, encode_udp(kSrc, kDst, d));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

TEST(Udp, ChecksumCoversPseudoHeader) {
  UdpDatagram d;
  d.src_port = 7;
  d.dst_port = 8;
  d.payload = {9, 9};
  const util::ByteBuffer wire = encode_udp(kSrc, kDst, d);
  // Decoding against different endpoint IPs must fail the checksum.
  const auto back = decode_udp(Ipv4Addr(10, 0, 0, 99), kDst, wire);
  EXPECT_FALSE(back.has_value());
}

TEST(Udp, PayloadCorruptionDetected) {
  UdpDatagram d;
  d.src_port = 7;
  d.dst_port = 8;
  d.payload = {1, 2, 3, 4};
  util::ByteBuffer wire = encode_udp(kSrc, kDst, d);
  wire[10] ^= 0x01;
  EXPECT_FALSE(decode_udp(kSrc, kDst, wire).has_value());
}

TEST(Udp, ZeroChecksumMeansUnverified) {
  UdpDatagram d;
  d.src_port = 7;
  d.dst_port = 8;
  d.payload = {5, 5};
  util::ByteBuffer wire = encode_udp(kSrc, kDst, d);
  wire[6] = 0;
  wire[7] = 0;
  // Now corrupt the payload; with checksum zero the RFC says accept.
  wire[9] ^= 0xFF;
  EXPECT_TRUE(decode_udp(kSrc, kDst, wire).has_value());
}

TEST(Udp, DecodeRejectsShortAndBadLength) {
  EXPECT_FALSE(decode_udp(kSrc, kDst, util::ByteBuffer{1, 2, 3}).has_value());
  UdpDatagram d;
  d.src_port = 1;
  d.dst_port = 2;
  d.payload = {1, 2, 3};
  util::ByteBuffer wire = encode_udp(kSrc, kDst, d);
  wire[4] = 0xFF;  // length field far beyond buffer
  wire[5] = 0xFF;
  EXPECT_FALSE(decode_udp(kSrc, kDst, wire).has_value());
}

TEST(Udp, TrailingPaddingIgnoredViaLengthField) {
  UdpDatagram d;
  d.src_port = 3;
  d.dst_port = 4;
  d.payload = {0xAB};
  util::ByteBuffer wire = encode_udp(kSrc, kDst, d);
  wire.resize(wire.size() + 30, 0);  // Ethernet minimum-frame padding
  const auto back = decode_udp(kSrc, kDst, wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, (util::ByteBuffer{0xAB}));
}

}  // namespace
}  // namespace ab::stack
