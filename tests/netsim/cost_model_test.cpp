#include "src/netsim/cost_model.h"

#include <gtest/gtest.h>

#include <vector>

namespace ab::netsim {
namespace {

TEST(CostModel, CostIsAffineInLength) {
  CostModel m;
  m.per_frame = microseconds(100);
  m.per_byte = nanoseconds(10);
  EXPECT_EQ(m.cost(0), microseconds(100));
  EXPECT_EQ(m.cost(1000), microseconds(100) + microseconds(10));
}

TEST(CostModel, PresetsAreOrderedAsInThePaper) {
  // Per-frame cost: ideal < host < repeater < bridge (paper Figs 9/10).
  const std::size_t len = 1000;
  EXPECT_EQ(CostModel::ideal().cost(len), Duration::zero());
  EXPECT_LT(CostModel::linux_host().cost(len), CostModel::c_repeater().cost(len));
  EXPECT_LT(CostModel::c_repeater().cost(len), CostModel::caml_bridge().cost(len));
  // The two bridge calibrations (ping path vs ttcp path) cross: the ping
  // path is dearer per frame, the ttcp path dearer per byte. At MTU-sized
  // frames the ttcp calibration dominates.
  EXPECT_LT(CostModel::caml_bridge_latency_path().cost(1480),
            CostModel::caml_bridge().cost(1480));
  EXPECT_GT(CostModel::caml_bridge_latency_path().cost(64),
            CostModel::caml_bridge().cost(64));
}

TEST(CostModel, CamlBridgeMatchesThePapersAnchorPoints) {
  // Paper section 7.3: 0.47 ms/frame inside Caml alone at ttcp's MTU-sized
  // frames. In-Caml share = bridge cost - repeater cost at 1480 bytes.
  const Duration in_caml = CostModel::caml_bridge().cost(1480) -
                           CostModel::c_repeater().cost(1480);
  EXPECT_GE(in_caml, microseconds(400));
  EXPECT_LE(in_caml, microseconds(540));

  // 16 Mb/s at MTU-sized fragments and ~1790 frames/s at 1024-byte frames.
  const double mbps =
      1480.0 * 8.0 / to_seconds(CostModel::caml_bridge().cost(1480)) / 1e6;
  EXPECT_GT(mbps, 14.0);
  EXPECT_LT(mbps, 18.0);
  const double fps = 1.0 / to_seconds(CostModel::caml_bridge().cost(1024));
  EXPECT_GT(fps, 1600.0);
  EXPECT_LT(fps, 2000.0);

  // The bridge achieves "about 44%" of the repeater's throughput.
  const double ratio = to_seconds(CostModel::c_repeater().cost(1480)) /
                       to_seconds(CostModel::caml_bridge().cost(1480));
  EXPECT_GT(ratio, 0.38);
  EXPECT_LT(ratio, 0.50);

  // The unbridged host baseline lands at the paper's 76 Mb/s.
  const double host_mbps =
      1500.0 * 8.0 / to_seconds(CostModel::linux_host().cost(1500)) / 1e6;
  EXPECT_GT(host_mbps, 72.0);
  EXPECT_LT(host_mbps, 80.0);
}

TEST(ProcessingElement, ChargesServiceTime) {
  Scheduler s;
  CostModel m;
  m.per_frame = milliseconds(1);
  ProcessingElement pe(s, m);
  TimePoint done{};
  pe.submit(0, [&] { done = s.now(); });
  s.run();
  EXPECT_EQ(done.time_since_epoch(), milliseconds(1));
  EXPECT_EQ(pe.processed(), 1u);
}

TEST(ProcessingElement, SerializesConcurrentWork) {
  Scheduler s;
  CostModel m;
  m.per_frame = milliseconds(1);
  ProcessingElement pe(s, m);
  std::vector<TimePoint> done;
  for (int i = 0; i < 3; ++i) pe.submit(0, [&] { done.push_back(s.now()); });
  s.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].time_since_epoch(), milliseconds(1));
  EXPECT_EQ(done[1].time_since_epoch(), milliseconds(2));
  EXPECT_EQ(done[2].time_since_epoch(), milliseconds(3));
}

TEST(ProcessingElement, ThroughputCeilingMatchesPerFrameCost) {
  // The paper derives a 2100 frames/s ceiling from 0.47 ms/frame. Submit a
  // second's worth of frames at a 0.5 ms/frame model: ~2000 complete.
  Scheduler s;
  CostModel m;
  m.per_frame = microseconds(500);
  ProcessingElement pe(s, m);
  int completed = 0;
  for (int i = 0; i < 5000; ++i) pe.submit(0, [&] { ++completed; });
  s.run_until(TimePoint{} + seconds(1));
  EXPECT_EQ(completed, 2000);
}

TEST(ProcessingElement, GcPausesInjectEveryNFrames) {
  Scheduler s;
  CostModel m;
  m.per_frame = microseconds(100);
  m.gc_pause = milliseconds(5);
  m.gc_every_frames = 10;
  ProcessingElement pe(s, m);
  for (int i = 0; i < 25; ++i) pe.submit(0, [] {});
  s.run();
  EXPECT_EQ(pe.gc_pauses(), 2u);
  // 25 frames * 0.1ms + 2 pauses * 5ms
  EXPECT_EQ(s.now().time_since_epoch(), microseconds(2500) + milliseconds(10));
}

TEST(ProcessingElement, IdleElementResumesAtNow) {
  Scheduler s;
  CostModel m;
  m.per_frame = milliseconds(1);
  ProcessingElement pe(s, m);
  pe.submit(0, [] {});
  s.run();
  // Let virtual time pass with the element idle.
  s.schedule_after(seconds(1), [] {});
  s.run();
  TimePoint done{};
  pe.submit(0, [&] { done = s.now(); });
  s.run();
  EXPECT_EQ(done.time_since_epoch(), seconds(1) + milliseconds(1) + milliseconds(1));
}

TEST(ProcessingElement, BusyTimeAccumulates) {
  Scheduler s;
  CostModel m;
  m.per_frame = milliseconds(2);
  ProcessingElement pe(s, m);
  pe.submit(0, [] {});
  pe.submit(0, [] {});
  s.run();
  EXPECT_EQ(pe.busy_time(), milliseconds(4));
}

TEST(ProcessingElement, BurstPacesIdenticallyToIndividualSubmits) {
  // submit_burst must produce the same completion schedule -- GC pauses
  // included -- as the equivalent submit() loop, with one scheduler insert.
  CostModel m;
  m.per_frame = microseconds(100);
  m.per_byte = nanoseconds(65);
  m.gc_pause = milliseconds(5);
  m.gc_every_frames = 3;
  const std::vector<std::size_t> lens{1480, 1480, 1480, 1480, 800};

  std::vector<Duration> individual;
  {
    Scheduler s;
    ProcessingElement pe(s, m);
    for (std::size_t len : lens) {
      pe.submit(len, [&individual, &s] {
        individual.push_back(s.now().time_since_epoch());
      });
    }
    s.run();
  }

  std::vector<Duration> burst_done;
  Scheduler s;
  ProcessingElement pe(s, m);
  std::vector<ProcessingElement::Work> work;
  for (std::size_t len : lens) {
    ProcessingElement::Work w;
    w.len = len;
    w.done = [&burst_done, &s] { burst_done.push_back(s.now().time_since_epoch()); };
    work.push_back(std::move(w));
  }
  const std::uint64_t before = s.inserts();
  pe.submit_burst(work);
  EXPECT_EQ(s.inserts() - before, 1u);
  s.run();

  EXPECT_EQ(burst_done, individual);
  EXPECT_EQ(pe.processed(), lens.size());
  EXPECT_EQ(pe.gc_pauses(), 1u);
}

TEST(ProcessingElement, SingleEntryBurstFallsBackToSubmit) {
  Scheduler s;
  CostModel m;
  m.per_frame = milliseconds(1);
  ProcessingElement pe(s, m);
  TimePoint done{};
  std::vector<ProcessingElement::Work> work(1);
  work[0].len = 0;
  work[0].done = [&] { done = s.now(); };
  pe.submit_burst(work);
  s.run();
  EXPECT_EQ(done.time_since_epoch(), milliseconds(1));
  EXPECT_EQ(pe.processed(), 1u);
}

}  // namespace
}  // namespace ab::netsim
