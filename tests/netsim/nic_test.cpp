#include "src/netsim/nic.h"

#include <gtest/gtest.h>

#include "src/netsim/network.h"

namespace ab::netsim {
namespace {

ether::Frame to(ether::MacAddress dst, ether::MacAddress src, std::size_t len = 64) {
  return ether::Frame::ethernet2(dst, src, ether::EtherType::kExperimental,
                                 util::ByteBuffer(len, 0x44));
}

struct TwoNics {
  Network net;
  LanSegment* lan;
  Nic* a;
  Nic* b;
  TwoNics() {
    lan = &net.add_segment("lan");
    a = &net.add_nic("a", *lan);
    b = &net.add_nic("b", *lan);
  }
};

TEST(Nic, AddressFilterAcceptsOwnUnicast) {
  TwoNics t;
  int got = 0;
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  t.a->transmit(to(t.b->mac(), t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(Nic, AddressFilterRejectsForeignUnicast) {
  TwoNics t;
  int got = 0;
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  const auto other = ether::MacAddress::parse("02:aa:aa:aa:aa:aa").value();
  t.a->transmit(to(other, t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(t.b->stats().rx_filtered, 1u);
}

TEST(Nic, PromiscuousModeAcceptsEverything) {
  // The paper: binding an input port puts it into promiscuous mode.
  TwoNics t;
  int got = 0;
  t.b->set_promiscuous(true);
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  const auto other = ether::MacAddress::parse("02:aa:aa:aa:aa:aa").value();
  t.a->transmit(to(other, t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(Nic, BroadcastAndMulticastPassTheFilter) {
  TwoNics t;
  int got = 0;
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  t.a->transmit(to(ether::MacAddress::broadcast(), t.a->mac()));
  t.a->transmit(to(ether::MacAddress::all_bridges(), t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(got, 2);
}

TEST(Nic, TransmitFailsWhenDetached) {
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  a.detach();
  EXPECT_FALSE(a.transmit(to(ether::MacAddress::broadcast(), a.mac())));
  EXPECT_EQ(a.stats().tx_dropped, 1u);
}

TEST(Nic, TxQueueTailDropsWhenFull) {
  TwoNics t;
  t.a->set_tx_queue_limit(4);
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (t.a->transmit(to(t.b->mac(), t.a->mac(), 1000))) ++accepted;
  }
  // One frame may already be in the transmitter plus 4 queued.
  EXPECT_LE(accepted, 6);
  EXPECT_GT(t.a->stats().tx_dropped, 0u);
  t.net.scheduler().run();
  EXPECT_EQ(t.a->stats().tx_frames, static_cast<std::uint64_t>(accepted));
}

TEST(Nic, FramesSerializeBackToBack) {
  TwoNics t;
  std::vector<TimePoint> arrivals;
  t.b->set_rx_handler([&](const ether::WireFrame&) { arrivals.push_back(t.net.now()); });
  const ether::Frame f = to(t.b->mac(), t.a->mac(), 1000);
  const Duration ser = t.lan->serialization_delay(f.wire_size());
  t.a->transmit(f);
  t.a->transmit(f);
  t.net.scheduler().run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second frame leaves one serialization time after the first.
  EXPECT_EQ((arrivals[1] - arrivals[0]), ser);
}

TEST(Nic, StatsCountRxTx) {
  TwoNics t;
  t.b->set_rx_handler([](const ether::WireFrame&) {});
  t.a->transmit(to(t.b->mac(), t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(t.a->stats().tx_frames, 1u);
  EXPECT_GT(t.a->stats().tx_bytes, 0u);
  EXPECT_EQ(t.b->stats().rx_frames, 1u);
}

TEST(Nic, ReattachToAnotherSegment) {
  Network net;
  LanSegment& lan1 = net.add_segment("lan1");
  LanSegment& lan2 = net.add_segment("lan2");
  Nic& a = net.add_nic("a", lan1);
  Nic& b = net.add_nic("b", lan2);
  int got = 0;
  b.set_rx_handler([&](const ether::WireFrame&) { ++got; });
  a.attach(lan2);
  EXPECT_EQ(a.segment(), &lan2);
  a.transmit(to(b.mac(), a.mac()));
  net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(Nic, NoHandlerMeansFrameIsDroppedQuietly) {
  TwoNics t;
  t.a->transmit(to(t.b->mac(), t.a->mac()));
  t.net.scheduler().run();  // must not crash
  EXPECT_EQ(t.b->stats().rx_frames, 1u);
}

}  // namespace
}  // namespace ab::netsim
