#include "src/netsim/nic.h"

#include <gtest/gtest.h>

#include "src/netsim/network.h"

namespace ab::netsim {
namespace {

ether::Frame to(ether::MacAddress dst, ether::MacAddress src, std::size_t len = 64) {
  return ether::Frame::ethernet2(dst, src, ether::EtherType::kExperimental,
                                 util::ByteBuffer(len, 0x44));
}

struct TwoNics {
  Network net;
  LanSegment* lan;
  Nic* a;
  Nic* b;
  TwoNics() {
    lan = &net.add_segment("lan");
    a = &net.add_nic("a", *lan);
    b = &net.add_nic("b", *lan);
  }
};

TEST(Nic, AddressFilterAcceptsOwnUnicast) {
  TwoNics t;
  int got = 0;
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  t.a->transmit(to(t.b->mac(), t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(Nic, AddressFilterRejectsForeignUnicast) {
  TwoNics t;
  int got = 0;
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  const auto other = ether::MacAddress::parse("02:aa:aa:aa:aa:aa").value();
  t.a->transmit(to(other, t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(t.b->stats().rx_filtered, 1u);
}

TEST(Nic, PromiscuousModeAcceptsEverything) {
  // The paper: binding an input port puts it into promiscuous mode.
  TwoNics t;
  int got = 0;
  t.b->set_promiscuous(true);
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  const auto other = ether::MacAddress::parse("02:aa:aa:aa:aa:aa").value();
  t.a->transmit(to(other, t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(Nic, BroadcastAndMulticastPassTheFilter) {
  TwoNics t;
  int got = 0;
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  t.a->transmit(to(ether::MacAddress::broadcast(), t.a->mac()));
  t.a->transmit(to(ether::MacAddress::all_bridges(), t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(got, 2);
}

TEST(Nic, TransmitFailsWhenDetached) {
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  a.detach();
  EXPECT_FALSE(a.transmit(to(ether::MacAddress::broadcast(), a.mac())));
  EXPECT_EQ(a.stats().tx_dropped, 1u);
}

TEST(Nic, TxQueueTailDropsWhenFull) {
  TwoNics t;
  t.a->set_tx_queue_limit(4);
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (t.a->transmit(to(t.b->mac(), t.a->mac(), 1000))) ++accepted;
  }
  // One frame may already be in the transmitter plus 4 queued.
  EXPECT_LE(accepted, 6);
  EXPECT_GT(t.a->stats().tx_dropped, 0u);
  t.net.scheduler().run();
  EXPECT_EQ(t.a->stats().tx_frames, static_cast<std::uint64_t>(accepted));
}

TEST(Nic, FramesSerializeBackToBack) {
  TwoNics t;
  std::vector<TimePoint> arrivals;
  t.b->set_rx_handler([&](const ether::WireFrame&) { arrivals.push_back(t.net.now()); });
  const ether::Frame f = to(t.b->mac(), t.a->mac(), 1000);
  const Duration ser = t.lan->serialization_delay(f.wire_size());
  t.a->transmit(f);
  t.a->transmit(f);
  t.net.scheduler().run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second frame leaves one serialization time after the first.
  EXPECT_EQ((arrivals[1] - arrivals[0]), ser);
}

TEST(Nic, StatsCountRxTx) {
  TwoNics t;
  t.b->set_rx_handler([](const ether::WireFrame&) {});
  t.a->transmit(to(t.b->mac(), t.a->mac()));
  t.net.scheduler().run();
  EXPECT_EQ(t.a->stats().tx_frames, 1u);
  EXPECT_GT(t.a->stats().tx_bytes, 0u);
  EXPECT_EQ(t.b->stats().rx_frames, 1u);
}

TEST(Nic, ReattachToAnotherSegment) {
  Network net;
  LanSegment& lan1 = net.add_segment("lan1");
  LanSegment& lan2 = net.add_segment("lan2");
  Nic& a = net.add_nic("a", lan1);
  Nic& b = net.add_nic("b", lan2);
  int got = 0;
  b.set_rx_handler([&](const ether::WireFrame&) { ++got; });
  a.attach(lan2);
  EXPECT_EQ(a.segment(), &lan2);
  a.transmit(to(b.mac(), a.mac()));
  net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(Nic, NoHandlerMeansFrameIsDroppedQuietly) {
  TwoNics t;
  t.a->transmit(to(t.b->mac(), t.a->mac()));
  t.net.scheduler().run();  // must not crash
  EXPECT_EQ(t.b->stats().rx_frames, 1u);
}

std::vector<ether::WireFrame> burst_of(std::size_t count, ether::MacAddress dst,
                                       ether::MacAddress src, std::size_t len = 1000) {
  std::vector<ether::WireFrame> frames;
  for (std::size_t i = 0; i < count; ++i) {
    frames.emplace_back(to(dst, src, len));
  }
  return frames;
}

TEST(NicBurst, BurstDeliversBackToBackLikeSequentialTransmits) {
  // transmit_burst must produce the exact arrival schedule k transmit()
  // calls do: one serialization time between consecutive frames.
  TwoNics t;
  std::vector<TimePoint> arrivals;
  t.b->set_rx_handler([&](const ether::WireFrame&) { arrivals.push_back(t.net.now()); });
  const Duration ser = t.lan->serialization_delay(to(t.b->mac(), t.a->mac(), 1000)
                                                      .wire_size());
  auto frames = burst_of(4, t.b->mac(), t.a->mac());
  EXPECT_EQ(t.a->transmit_burst(frames), 4u);
  t.net.scheduler().run();
  ASSERT_EQ(arrivals.size(), 4u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], ser);
  }
  EXPECT_EQ(t.a->stats().tx_frames, 4u);
}

TEST(NicBurst, BurstCostsTwoSchedulerInserts) {
  // One timed run for the k transmit completions, one for the k paced
  // deliveries -- two heap inserts total, however large the burst.
  TwoNics t;
  t.b->set_rx_handler([](const ether::WireFrame&) {});
  auto frames = burst_of(8, t.b->mac(), t.a->mac());
  const std::uint64_t before = t.net.scheduler().inserts();
  t.a->transmit_burst(frames);
  EXPECT_EQ(t.net.scheduler().inserts() - before, 2u);
  t.net.scheduler().run();
  EXPECT_EQ(t.b->stats().rx_frames, 8u);
}

TEST(NicBurst, BurstTailDropsAtTheQueueLimit) {
  TwoNics t;
  t.a->set_tx_queue_limit(4);
  auto frames = burst_of(20, t.b->mac(), t.a->mac());
  const std::size_t admitted = t.a->transmit_burst(frames);
  EXPECT_EQ(admitted, 4u);
  EXPECT_EQ(t.a->stats().tx_dropped, 16u);
  t.net.scheduler().run();
  EXPECT_EQ(t.a->stats().tx_frames, admitted);
}

TEST(NicBurst, InFlightBurstCountsAgainstTheQueueLimit) {
  // The chain kept the backlog in tx_queue_; the run holds it in the
  // scheduler. Backpressure must not change: with limit L and a full
  // burst in flight, at most one more frame (the serializing slot) is
  // admitted -- L + 1 in the system, exactly as sequential transmit()
  // against the chain allowed.
  TwoNics t;
  t.a->set_tx_queue_limit(4);
  t.b->set_rx_handler([](const ether::WireFrame&) {});
  auto frames = burst_of(4, t.b->mac(), t.a->mac());
  ASSERT_EQ(t.a->transmit_burst(frames), 4u);  // drained as one run
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (t.a->transmit(to(t.b->mac(), t.a->mac(), 1000))) ++admitted;
  }
  EXPECT_EQ(admitted, 1);  // 3 run frames beyond the serializing one + 1 = limit
  t.net.scheduler().run();
  EXPECT_EQ(t.b->stats().rx_frames, 5u);
  // Fully drained: the backlog accounting must return to zero.
  EXPECT_TRUE(t.a->transmit(to(t.b->mac(), t.a->mac(), 1000)));
}

TEST(NicBurst, BurstOnDetachedNicDropsEverything) {
  TwoNics t;
  t.a->detach();
  auto frames = burst_of(3, t.b->mac(), t.a->mac());
  EXPECT_EQ(t.a->transmit_burst(frames), 0u);
  EXPECT_EQ(t.a->stats().tx_dropped, 3u);
}

TEST(NicBurst, BurstSplitsAndResumesAcrossStepBudgets) {
  // A burst is observably k individual completion events: step() fires one
  // frame at a time, and a run(max) budget that splits the burst leaves
  // the remaining frames to deliver afterwards, in order, on time.
  TwoNics t;
  std::vector<TimePoint> arrivals;
  t.b->set_rx_handler([&](const ether::WireFrame&) { arrivals.push_back(t.net.now()); });
  auto frames = burst_of(4, t.b->mac(), t.a->mac());
  t.a->transmit_burst(frames);
  // Each frame costs two events: its serialization completion (run entry)
  // and the segment's delivery walk.
  EXPECT_EQ(t.net.scheduler().run(3), 3u);  // completion, delivery, completion
  EXPECT_EQ(arrivals.size(), 1u);
  t.net.scheduler().run();
  ASSERT_EQ(arrivals.size(), 4u);
  const Duration ser = t.lan->serialization_delay(to(t.b->mac(), t.a->mac(), 1000)
                                                      .wire_size());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], ser);
  }
}

TEST(NicBurst, FramesQueuedMidBurstDrainAfterIt) {
  // A transmit() while the burst run is in flight queues behind it and
  // serializes right after the burst's last frame -- the chain timing.
  TwoNics t;
  std::vector<TimePoint> arrivals;
  t.b->set_rx_handler([&](const ether::WireFrame&) { arrivals.push_back(t.net.now()); });
  const ether::Frame f = to(t.b->mac(), t.a->mac(), 1000);
  const Duration ser = t.lan->serialization_delay(f.wire_size());
  auto frames = burst_of(3, t.b->mac(), t.a->mac());
  t.a->transmit_burst(frames);
  // After the first completion fires, enqueue a straggler.
  t.net.scheduler().run(1);
  t.a->transmit(f);
  t.net.scheduler().run();
  ASSERT_EQ(arrivals.size(), 4u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], ser);
  }
  EXPECT_EQ(t.a->stats().tx_frames, 4u);
}

TEST(NicBurst, DetachMidBurstSkipsTheRemainingBroadcasts) {
  TwoNics t;
  int got = 0;
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  auto frames = burst_of(3, t.b->mac(), t.a->mac());
  t.a->transmit_burst(frames);
  t.net.scheduler().run(2);  // first completion + its delivery
  t.a->detach();
  t.net.scheduler().run();  // remaining completions fire but do not broadcast
  EXPECT_EQ(got, 1);
}

TEST(NicBurst, ReattachMidBurstDoesNotLeakOldPacingOntoTheNewSegment) {
  // A burst is paced for the segment it drained on; frames remaining when
  // the NIC moves to another segment must NOT be delivered there at the
  // old segment's completion times.
  Network net;
  LanSegment& lan1 = net.add_segment("lan1");
  LanSegment& lan2 = net.add_segment("lan2");
  Nic& a = net.add_nic("a", lan1);
  Nic& b = net.add_nic("b", lan1);
  Nic& c = net.add_nic("c", lan2);
  int on_lan1 = 0;
  int on_lan2 = 0;
  b.set_rx_handler([&](const ether::WireFrame&) { ++on_lan1; });
  c.set_promiscuous(true);
  c.set_rx_handler([&](const ether::WireFrame&) { ++on_lan2; });
  auto frames = burst_of(3, b.mac(), a.mac());
  a.transmit_burst(frames);
  net.scheduler().run(2);  // first completion + its delivery on lan1
  a.attach(lan2);
  net.scheduler().run();
  EXPECT_EQ(on_lan1, 1);
  EXPECT_EQ(on_lan2, 0);  // stale burst frames never reach the new segment
  // The transmitter is free again for properly paced traffic on lan2.
  EXPECT_TRUE(a.transmit(to(c.mac(), a.mac())));
  net.scheduler().run();
  EXPECT_EQ(on_lan2, 1);

  // The same contract holds for the single-frame path and for claimed
  // (try_prepare) transmissions: whether a stale frame leaks must not
  // depend on backlog depth.
  a.attach(lan1);
  a.transmit(to(b.mac(), a.mac()));  // single in-flight frame, paced for lan1
  a.attach(lan2);
  net.scheduler().run();
  EXPECT_EQ(on_lan1, 1);
  EXPECT_EQ(on_lan2, 1);

  a.attach(lan1);
  auto claimed = a.try_prepare(ether::WireFrame(to(b.mac(), a.mac())));
  ASSERT_TRUE(claimed.has_value());
  std::vector<Scheduler::TimedEntry> run;
  run.push_back(std::move(*claimed));
  net.scheduler().schedule_run_at(run);
  a.attach(lan2);
  net.scheduler().run();
  EXPECT_EQ(on_lan1, 1);
  EXPECT_EQ(on_lan2, 1);
}

TEST(NicBurst, TryPrepareClaimsIdleTransmitterOnly) {
  TwoNics t;
  int got = 0;
  t.b->set_rx_handler([&](const ether::WireFrame&) { ++got; });
  const ether::WireFrame frame(to(t.b->mac(), t.a->mac(), 1000));
  auto claimed = t.a->try_prepare(frame);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->when - t.net.now(),
            t.lan->serialization_delay(frame.wire_size()));
  // Busy transmitter (claimed above): a second prepare declines, with no
  // side effects -- transmit() still queues behind the claim.
  EXPECT_FALSE(t.a->try_prepare(frame).has_value());
  EXPECT_EQ(t.a->stats().tx_frames, 1u);
  EXPECT_TRUE(t.a->transmit(frame));
  // Schedule the claimed completion, as a TxBatch would.
  std::vector<Scheduler::TimedEntry> run;
  run.push_back(std::move(*claimed));
  t.net.scheduler().schedule_run_at(run);
  t.net.scheduler().run();
  EXPECT_EQ(got, 2);  // the claimed frame AND the queued one both made it
  EXPECT_EQ(t.a->stats().tx_frames, 2u);
}

TEST(NicBurst, TryPrepareDeclinesWhenDetached) {
  TwoNics t;
  t.a->detach();
  const ether::WireFrame frame(to(t.b->mac(), t.a->mac()));
  EXPECT_FALSE(t.a->try_prepare(frame).has_value());
  EXPECT_EQ(t.a->stats().tx_dropped, 0u);  // no side effects: caller decides
}

TEST(TxBatch, FlushSchedulesOneRunAndSortsByCompletionTime) {
  Network net;
  std::vector<int> order;
  TxBatch batch;
  // Out-of-order completion times with an equal-time pair: flush must sort
  // by time, stable within the tie.
  const auto entry = [&](int label, Duration when) {
    Scheduler::TimedEntry e;
    e.when = TimePoint{} + when;
    e.fn = [&order, label] { order.push_back(label); };
    return e;
  };
  batch.add(entry(0, milliseconds(5)));
  batch.add(entry(1, milliseconds(2)));
  batch.add(entry(2, milliseconds(5)));
  batch.add(entry(3, milliseconds(2)));
  const std::uint64_t before = net.scheduler().inserts();
  batch.flush(net.scheduler());
  EXPECT_EQ(net.scheduler().inserts() - before, 1u);
  EXPECT_TRUE(batch.empty());
  net.scheduler().run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 0, 2}));
}

TEST(TxBatch, FlushOfEmptyBatchIsANoOp) {
  Network net;
  TxBatch batch;
  EXPECT_EQ(batch.flush(net.scheduler()), BatchId{});
  EXPECT_TRUE(net.scheduler().empty());
}

TEST(Nic, RunExtensionTimingMatchesTheQueuedModel) {
  // The saturated-transmit extension claims timing identity: a frame that
  // extends the in-flight run must complete and deliver at EXACTLY the
  // times the queue-then-restart path produces, saving one heap insert
  // and nothing else. Run the same scenario twice -- the control disables
  // extension by staling the run handle (note_run(BatchId{}), the state a
  // claim has before TxBatch reports back), forcing the FIFO fallback.
  struct Out {
    std::vector<Duration> delivered_at;
    std::uint64_t inserts = 0;
    std::uint64_t scheduled = 0;
  };
  auto drive = [](bool stale_handle) {
    Out out;
    Network net;
    LanSegment& lan = net.add_segment("lan");
    Nic& tx = net.add_nic("tx", lan);
    Nic& rx = net.add_nic("rx", lan);
    rx.set_rx_handler([&](const ether::WireFrame&) {
      out.delivered_at.push_back(net.scheduler().now().time_since_epoch());
    });
    tx.transmit(to(rx.mac(), tx.mac(), 1000));
    if (stale_handle) tx.note_run(BatchId{});
    // Offer the second frame mid-serialization of the first: transmitter
    // busy, queue empty -- the extension case.
    net.scheduler().schedule_after(microseconds(20), [&] {
      tx.transmit(to(rx.mac(), tx.mac(), 600));
    });
    net.scheduler().run();
    out.inserts = net.scheduler().inserts();
    out.scheduled = net.scheduler().scheduled();
    return out;
  };
  const Out extended = drive(false);
  const Out queued = drive(true);

  ASSERT_EQ(extended.delivered_at.size(), 2u);
  ASSERT_EQ(queued.delivered_at.size(), 2u);
  EXPECT_EQ(extended.delivered_at, queued.delivered_at);
  // Identical event programs, one fewer heap insert on the extension side
  // (the queued model restarts the transmitter with a fresh run).
  EXPECT_EQ(extended.scheduled, queued.scheduled);
  EXPECT_EQ(extended.inserts + 1, queued.inserts);

  // And both match the analytic FIFO model: back-to-back serialization
  // from t=0, each delivery one propagation later.
  Network probe_net;
  LanSegment& probe = probe_net.add_segment("probe");
  const Duration ser1 =
      probe.serialization_delay(ether::WireFrame(to({}, {}, 1000)).wire_size());
  const Duration ser2 =
      probe.serialization_delay(ether::WireFrame(to({}, {}, 600)).wire_size());
  const Duration prop = probe.config().propagation;
  EXPECT_EQ(extended.delivered_at[0], ser1 + prop);
  EXPECT_EQ(extended.delivered_at[1], ser1 + ser2 + prop);
}

}  // namespace
}  // namespace ab::netsim
