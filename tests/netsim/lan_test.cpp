#include "src/netsim/lan.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/netsim/network.h"
#include "src/netsim/nic.h"
#include "src/netsim/trace.h"

namespace ab::netsim {
namespace {

ether::Frame test_frame(ether::MacAddress dst, ether::MacAddress src,
                        std::size_t len = 64) {
  return ether::Frame::ethernet2(dst, src, ether::EtherType::kExperimental,
                                 util::ByteBuffer(len, 0x33));
}

TEST(LanSegment, SerializationDelayMatchesBitRate) {
  Network net;
  LanConfig cfg;
  cfg.bit_rate = 100e6;  // 100 Mb/s
  LanSegment& lan = net.add_segment("lan", cfg);
  // 1250 bytes = 10000 bits = 100 us at 100 Mb/s.
  EXPECT_EQ(lan.serialization_delay(1250), microseconds(100));
}

TEST(LanSegment, RejectsNonPositiveBitRate) {
  Network net;
  LanConfig cfg;
  cfg.bit_rate = 0;
  EXPECT_THROW(net.add_segment("bad", cfg), std::invalid_argument);
}

TEST(LanSegment, BroadcastReachesAllButSender) {
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  Nic& b = net.add_nic("b", lan);
  Nic& c = net.add_nic("c", lan);

  int b_got = 0, c_got = 0;
  b.set_rx_handler([&](const ether::WireFrame&) { ++b_got; });
  c.set_rx_handler([&](const ether::WireFrame&) { ++c_got; });

  a.transmit(test_frame(ether::MacAddress::broadcast(), a.mac()));
  net.scheduler().run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
  EXPECT_EQ(a.stats().rx_frames, 0u);  // sender does not hear itself
}

TEST(LanSegment, PropagationDelayIsApplied) {
  Network net;
  LanConfig cfg;
  cfg.propagation = microseconds(50);
  LanSegment& lan = net.add_segment("lan", cfg);
  Nic& a = net.add_nic("a", lan);
  Nic& b = net.add_nic("b", lan);

  TimePoint delivered{};
  b.set_rx_handler([&](const ether::WireFrame&) { delivered = net.now(); });
  const ether::Frame f = test_frame(b.mac(), a.mac());
  const Duration ser = lan.serialization_delay(f.wire_size());
  a.transmit(f);
  net.scheduler().run();
  EXPECT_EQ(delivered.time_since_epoch(), (ser + cfg.propagation).count() * Duration(1));
}

TEST(LanSegment, LossModelDropsApproximatelyTheConfiguredFraction) {
  Network net;
  LanConfig cfg;
  cfg.loss = 0.5;
  cfg.seed = 42;
  LanSegment& lan = net.add_segment("lossy", cfg);
  Nic& a = net.add_nic("a", lan);
  Nic& b = net.add_nic("b", lan);

  int got = 0;
  b.set_rx_handler([&](const ether::WireFrame&) { ++got; });
  const int kFrames = 1000;
  a.set_tx_queue_limit(kFrames + 1);
  for (int i = 0; i < kFrames; ++i) {
    a.transmit(test_frame(b.mac(), a.mac()));
  }
  net.scheduler().run();
  EXPECT_GT(got, 350);
  EXPECT_LT(got, 650);
  EXPECT_EQ(lan.stats().frames_lost, static_cast<std::uint64_t>(kFrames - got));
}

TEST(LanSegment, StatsCountCarriedFrames) {
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  net.add_nic("b", lan);
  for (int i = 0; i < 5; ++i) a.transmit(test_frame(ether::MacAddress::broadcast(), a.mac()));
  net.scheduler().run();
  EXPECT_EQ(lan.stats().frames_carried, 5u);
  EXPECT_GT(lan.stats().bytes_carried, 0u);
}

TEST(LanSegment, DetachedNicMissesInFlightFrames) {
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  Nic& b = net.add_nic("b", lan);
  int got = 0;
  b.set_rx_handler([&](const ether::WireFrame&) { ++got; });
  a.transmit(test_frame(b.mac(), a.mac()));
  b.detach();  // detach before delivery event fires
  net.scheduler().run();
  EXPECT_EQ(got, 0);
}

TEST(LanSegment, NicDetachedFromTheDeliverySnapshotIsSkipped) {
  // Multi-receiver variant: the broadcast's delivery walk snapshots b and
  // c at transmit time; c detaches before the event fires and must be
  // skipped while b still receives.
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  Nic& b = net.add_nic("b", lan);
  Nic& c = net.add_nic("c", lan);
  int b_got = 0, c_got = 0;
  b.set_rx_handler([&](const ether::WireFrame&) { ++b_got; });
  c.set_rx_handler([&](const ether::WireFrame&) { ++c_got; });
  a.transmit(test_frame(ether::MacAddress::broadcast(), a.mac()));
  c.detach();
  net.scheduler().run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
}

TEST(LanSegment, ReceiverDetachedMidWalkByAnEarlierHandlerIsNotTouched) {
  // Regression for per-segment delivery: one event walks all receivers, so
  // a handler running for receiver b can detach receiver c INSIDE the same
  // walk -- c must then be skipped, not delivered to.
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  Nic& b = net.add_nic("b", lan);
  Nic& c = net.add_nic("c", lan);
  int b_got = 0, c_got = 0;
  b.set_rx_handler([&](const ether::WireFrame&) {
    ++b_got;
    c.detach();
  });
  c.set_rx_handler([&](const ether::WireFrame&) { ++c_got; });
  a.transmit(test_frame(ether::MacAddress::broadcast(), a.mac()));
  net.scheduler().run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
  EXPECT_EQ(c.segment(), nullptr);
}

TEST(LanSegment, NicDestroyedWhileFramesAreInFlightIsNeverTouched) {
  // Destruction (not just detach) between transmit and delivery: the walk
  // must not dereference the dead NIC. Covers both the single-receiver
  // fast path (one live receiver left) and the multi-receiver run.
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  Nic& b = net.add_nic("b", lan);
  int b_got = 0;
  b.set_rx_handler([&](const ether::WireFrame&) { ++b_got; });
  auto doomed = std::make_unique<Nic>(net.scheduler(), "doomed",
                                      ether::MacAddress{{2, 0, 0, 0, 0, 0x99}});
  doomed->attach(lan);
  a.transmit(test_frame(ether::MacAddress::broadcast(), a.mac()));
  doomed.reset();  // destructor detaches; the snapshot still names it
  net.scheduler().run();
  EXPECT_EQ(b_got, 1);
}

TEST(LanSegment, BroadcastSchedulesOneDeliveryEventPerSegment) {
  // The batched-delivery contract: a broadcast costs one transmit event
  // plus ONE delivery event for the whole segment, independent of the
  // receiver population.
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  constexpr int kReceivers = 50;
  int got = 0;
  for (int i = 0; i < kReceivers; ++i) {
    Nic& rx = net.add_nic("rx" + std::to_string(i), lan);
    rx.set_rx_handler([&](const ether::WireFrame&) { ++got; });
  }
  const std::uint64_t before = net.scheduler().executed();
  a.transmit(test_frame(ether::MacAddress::broadcast(), a.mac()));
  net.scheduler().run();
  EXPECT_EQ(got, kReceivers);
  // One serialization-done event at the NIC + one delivery walk.
  EXPECT_EQ(net.scheduler().executed() - before, 2u);
}

TEST(LanSegment, InjectRemoteDeliversAtGivenTimeWithoutCountingCarried) {
  // Cross-shard injection: the producing replica counted/taped/relayed the
  // frame at transmit time, so this replica only delivers -- at exactly the
  // producer-computed time, to every attached NIC (no sender to exclude).
  Network net;
  LanSegment& lan = net.add_segment("replica");
  Nic& a = net.add_nic("a", lan);
  Nic& b = net.add_nic("b", lan);
  int a_got = 0, b_got = 0;
  TimePoint at_a{};
  a.set_rx_handler([&](const ether::WireFrame&) { ++a_got; at_a = net.now(); });
  b.set_rx_handler([&](const ether::WireFrame&) { ++b_got; });

  bool relayed = false;
  lan.set_relay([&](TimePoint, const Nic*, util::ByteView) { relayed = true; });

  const ether::WireFrame frame(test_frame(ether::MacAddress::broadcast(),
                                          ether::MacAddress::local(9, 9)));
  lan.inject_remote(frame, TimePoint(microseconds(40)));
  net.scheduler().run();

  EXPECT_EQ(a_got, 1);
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(at_a, TimePoint(microseconds(40)));
  EXPECT_EQ(lan.stats().frames_carried, 0u);
  EXPECT_EQ(lan.stats().bytes_carried, 0u);
  // A re-relay here would echo the frame back across the cut forever.
  EXPECT_FALSE(relayed);
}

TEST(LanSegment, InjectRemoteDrawsThisReplicasOwnLoss) {
  // Local loss draws still apply to remote frames: this replica's rng,
  // this replica's attach order -- and losses count here, because the
  // producer could not know which consumer-side receivers drop.
  Network net;
  LanConfig cfg;
  cfg.loss = 1.0;
  LanSegment& lan = net.add_segment("lossy-replica", cfg);
  Nic& rx = net.add_nic("rx", lan);
  int got = 0;
  rx.set_rx_handler([&](const ether::WireFrame&) { ++got; });

  const ether::WireFrame frame(test_frame(ether::MacAddress::broadcast(),
                                          ether::MacAddress::local(9, 9)));
  lan.inject_remote(frame, TimePoint(microseconds(10)));
  net.scheduler().run();

  EXPECT_EQ(got, 0);
  EXPECT_EQ(lan.stats().frames_lost, 1u);
  EXPECT_EQ(lan.stats().frames_carried, 0u);
}

TEST(LanSegment, InjectRemoteSurvivesDetachDrivenCompactionMidFlight) {
  // Shard-teardown regression: a frame drained from a neighbor's mailbox is
  // in flight (snapshot taken) when enough NICs detach -- and are DESTROYED
  // -- to trigger tombstone compaction, which reshuffles nics_ under the
  // snapshot's slot indices. The walk must fall back to membership checks
  // (detach epoch changed) and deliver only to survivors, never touching a
  // compacted-away slot or a dead NIC.
  Network net;
  LanSegment& lan = net.add_segment("replica");
  Nic& survivor = net.add_nic("survivor", lan);
  int got = 0;
  survivor.set_rx_handler([&](const ether::WireFrame&) { ++got; });

  std::vector<std::unique_ptr<Nic>> doomed;
  for (int i = 0; i < 3; ++i) {
    doomed.push_back(std::make_unique<Nic>(
        net.scheduler(), "doomed" + std::to_string(i),
        ether::MacAddress{{2, 0, 0, 0, 0, static_cast<std::uint8_t>(0x50 + i)}}));
    doomed.back()->attach(lan);
  }

  const ether::WireFrame frame(test_frame(ether::MacAddress::broadcast(),
                                          ether::MacAddress::local(9, 9)));
  lan.inject_remote(frame, TimePoint(microseconds(25)));
  // 3 of 4 slots tombstone: the third detach tips dead*2 > size and
  // compacts, bumping both epochs while the run is still scheduled.
  doomed.clear();
  net.scheduler().run();

  EXPECT_EQ(got, 1);
}

TEST(LanSegment, InjectRemoteSoleReceiverDetachMidFlightIsSafe) {
  // Single-receiver fast path of inject_remote: the one receiver detaches
  // before the delivery event fires; nothing must be delivered or touched.
  Network net;
  LanSegment& lan = net.add_segment("replica");
  Nic& rx = net.add_nic("rx", lan);
  int got = 0;
  rx.set_rx_handler([&](const ether::WireFrame&) { ++got; });

  const ether::WireFrame frame(test_frame(ether::MacAddress::broadcast(),
                                          ether::MacAddress::local(9, 9)));
  lan.inject_remote(frame, TimePoint(microseconds(15)));
  rx.detach();
  net.scheduler().run();

  EXPECT_EQ(got, 0);
}

TEST(FrameTrace, RecordsCarriedFrames) {
  Network net;
  LanSegment& lan = net.add_segment("lan1");
  FrameTrace trace;
  trace.watch(lan);
  Nic& a = net.add_nic("a", lan);
  net.add_nic("b", lan);
  a.transmit(test_frame(ether::MacAddress::broadcast(), a.mac(), 100));
  net.scheduler().run();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.entries()[0].segment, "lan1");
  EXPECT_TRUE(trace.entries()[0].decoded_ok);
  EXPECT_EQ(trace.entries()[0].src, a.mac());
  EXPECT_EQ(trace.count_on("lan1"), 1u);
  EXPECT_EQ(trace.count_on("other"), 0u);
  EXPECT_NE(trace.dump().find("lan1"), std::string::npos);
}

TEST(Network, FindSegmentAndDuplicateNames) {
  Network net;
  net.add_segment("x");
  EXPECT_NE(net.find_segment("x"), nullptr);
  EXPECT_EQ(net.find_segment("y"), nullptr);
  EXPECT_THROW(net.add_segment("x"), std::invalid_argument);
}

TEST(Network, AutoAssignedMacsAreUnique) {
  Network net;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic("a", lan);
  Nic& b = net.add_nic("b", lan);
  Nic& c = net.add_nic("c", lan);
  EXPECT_NE(a.mac(), b.mac());
  EXPECT_NE(b.mac(), c.mac());
  EXPECT_NE(a.mac(), c.mac());
}

}  // namespace
}  // namespace ab::netsim
