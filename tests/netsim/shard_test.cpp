// Units for the sharded parallel core: the SPSC RelayRing, the
// ShardChannel conduit (ring + spill), Shard drain ordering, and the
// ParallelRunner's conservative windows -- including the thread-count
// independence property on synthetic shards.
#include "src/netsim/shard.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/ether/frame.h"
#include "src/netsim/lan.h"
#include "src/netsim/network.h"
#include "src/netsim/nic.h"
#include "src/netsim/parallel_runner.h"

namespace ab::netsim {
namespace {

ether::Frame test_frame(std::size_t payload_len = 64) {
  return ether::Frame::ethernet2(ether::MacAddress::broadcast(),
                                 ether::MacAddress::local(7, 1),
                                 ether::EtherType::kExperimental,
                                 util::ByteBuffer(payload_len, 0x33));
}

RelayFrame relay_frame(TimePoint deliver_at, std::size_t payload_len = 64) {
  RelayFrame frame;
  frame.deliver_at = deliver_at;
  const ether::WireFrame wire(test_frame(payload_len));
  frame.wire.assign(wire.wire().begin(), wire.wire().end());
  return frame;
}

// ---------------------------------------------------------------- RelayRing

TEST(RelayRing, CapacityRoundsUpToPowerOfTwoMinimumTwo) {
  EXPECT_EQ(RelayRing(1).capacity(), 2u);
  EXPECT_EQ(RelayRing(2).capacity(), 2u);
  EXPECT_EQ(RelayRing(4).capacity(), 4u);
  EXPECT_EQ(RelayRing(5).capacity(), 8u);
  EXPECT_EQ(RelayRing(1024).capacity(), 1024u);
}

TEST(RelayRing, PopsInPushOrder) {
  RelayRing ring(4);
  for (int i = 0; i < 3; ++i) {
    RelayFrame frame = relay_frame(TimePoint(microseconds(i)));
    ASSERT_TRUE(ring.try_push(frame));
  }
  EXPECT_EQ(ring.size(), 3u);

  RelayFrame out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.deliver_at, TimePoint(microseconds(i)));
    EXPECT_FALSE(out.wire.empty());
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(RelayRing, FullRingRejectsPushAndLeavesFrameIntact) {
  RelayRing ring(2);
  RelayFrame a = relay_frame(TimePoint(microseconds(1)));
  RelayFrame b = relay_frame(TimePoint(microseconds(2)));
  ASSERT_TRUE(ring.try_push(a));
  ASSERT_TRUE(ring.try_push(b));

  RelayFrame c = relay_frame(TimePoint(microseconds(3)));
  const std::size_t wire_bytes = c.wire.size();
  EXPECT_FALSE(ring.try_push(c));
  // The caller still owns the frame (it spills, it is not lost).
  EXPECT_EQ(c.deliver_at, TimePoint(microseconds(3)));
  EXPECT_EQ(c.wire.size(), wire_bytes);

  RelayFrame out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(c));  // slot freed, push succeeds now
  EXPECT_EQ(ring.size(), 2u);
}

TEST(RelayRing, CrossThreadSpscPreservesOrder) {
  RelayRing ring(64);
  constexpr int kFrames = 4096;

  std::thread producer([&ring] {
    for (int i = 0; i < kFrames; ++i) {
      RelayFrame frame;
      frame.deliver_at = TimePoint(Duration(i));
      frame.wire.assign(8, static_cast<unsigned char>(i & 0xFF));
      while (!ring.try_push(frame)) std::this_thread::yield();
    }
  });

  RelayFrame out;
  for (int i = 0; i < kFrames; ++i) {
    while (!ring.try_pop(out)) std::this_thread::yield();
    ASSERT_EQ(out.deliver_at, TimePoint(Duration(i)));
    ASSERT_EQ(out.wire[0], static_cast<unsigned char>(i & 0xFF));
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ------------------------------------------------------------- ShardChannel

TEST(ShardChannel, DrainInjectsIntoTargetAtProducerComputedTimes) {
  Network net;
  LanSegment& lan = net.add_segment("replica");
  Nic& rx = net.add_nic("rx", lan);
  std::vector<TimePoint> delivered;
  rx.set_rx_handler([&](const ether::WireFrame&) { delivered.push_back(net.now()); });

  ShardChannel channel(lan);
  const ether::WireFrame wire(test_frame());
  channel.push(TimePoint(microseconds(10)), wire.wire());
  channel.push(TimePoint(microseconds(20)), wire.wire());

  EXPECT_EQ(channel.drain(), 2u);
  net.scheduler().run();

  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], TimePoint(microseconds(10)));
  EXPECT_EQ(delivered[1], TimePoint(microseconds(20)));
  // Remote frames are counted at the producer's replica, never here.
  EXPECT_EQ(lan.stats().frames_carried, 0u);
  EXPECT_EQ(lan.stats().bytes_carried, 0u);
  EXPECT_EQ(channel.spilled(), 0u);
}

TEST(ShardChannel, OverflowSpillsAndDrainPreservesPushOrder) {
  Network net;
  LanSegment& lan = net.add_segment("replica");
  Nic& rx = net.add_nic("rx", lan);
  std::vector<std::size_t> sizes;
  rx.set_rx_handler(
      [&](const ether::WireFrame& f) { sizes.push_back(f.wire_size()); });

  // Ring capacity 2: pushes 3..5 overflow into the producer-owned spill.
  ShardChannel channel(lan, 2);
  const TimePoint at(microseconds(5));
  for (std::size_t i = 0; i < 5; ++i) {
    const ether::WireFrame wire(test_frame(100 + i));  // distinct wire sizes
    channel.push(at, wire.wire());
  }
  EXPECT_EQ(channel.spilled(), 3u);

  EXPECT_EQ(channel.drain(), 5u);
  net.scheduler().run();

  // Same timestamp throughout, so delivery order IS injection order: ring
  // first (older frames), then spill, both in push order.
  ASSERT_EQ(sizes.size(), 5u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[i - 1] + 1) << "frame " << i << " out of order";
  }
  EXPECT_EQ(channel.spilled(), 3u);  // telemetry is cumulative, not reset
}

// -------------------------------------------------------------------- Shard

TEST(Shard, DrainsInboundChannelsInRegistrationOrder) {
  Network net;
  LanSegment& lan = net.add_segment("replica");
  Nic& rx = net.add_nic("rx", lan);
  std::vector<std::size_t> sizes;
  rx.set_rx_handler(
      [&](const ether::WireFrame& f) { sizes.push_back(f.wire_size()); });

  ShardChannel first(lan);
  ShardChannel second(lan);
  Shard shard(net.scheduler());
  shard.add_inbound(first);
  shard.add_inbound(second);
  ASSERT_EQ(shard.inbound().size(), 2u);

  // Push into `second` before `first`; the drain must still visit `first`
  // first -- registration order, not push order, is the contract.
  const TimePoint at(microseconds(5));
  second.push(at, ether::WireFrame(test_frame(101)).wire());
  first.push(at, ether::WireFrame(test_frame(100)).wire());

  EXPECT_EQ(shard.drain(), 2u);
  net.scheduler().run();

  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], ether::WireFrame(test_frame(100)).wire_size());
  EXPECT_EQ(sizes[1], ether::WireFrame(test_frame(101)).wire_size());
}

// ----------------------------------------------------------- ParallelRunner

TEST(ParallelRunner, RejectsEmptyOrNullShards) {
  EXPECT_THROW(ParallelRunner({}, {}), std::invalid_argument);

  Network net;
  Shard shard(net.scheduler());
  EXPECT_THROW(ParallelRunner({&shard, nullptr}, {}), std::invalid_argument);
}

TEST(ParallelRunner, NoLookaheadCollapsesToOneWindow) {
  Network a, b;
  Shard sa(a.scheduler()), sb(b.scheduler());
  int fired = 0;
  a.scheduler().schedule_at(TimePoint(microseconds(10)), [&] { ++fired; });
  b.scheduler().schedule_at(TimePoint(microseconds(700)), [&] { ++fired; });

  ParallelRunner runner({&sa, &sb}, {.threads = 1, .lookahead = Duration::zero()});
  runner.run_until(TimePoint(milliseconds(1)));

  EXPECT_EQ(fired, 2);
  EXPECT_EQ(runner.rounds(), 1u);
  EXPECT_EQ(a.now(), TimePoint(milliseconds(1)));
  EXPECT_EQ(b.now(), TimePoint(milliseconds(1)));
}

TEST(ParallelRunner, ConservativeWindowsBoundEachRoundByLookahead) {
  Network a, b;
  Shard sa(a.scheduler()), sb(b.scheduler());

  // Shard a ticks every 10us, rescheduling itself from inside each tick.
  std::vector<TimePoint> ticks;
  struct Ticker {
    Scheduler* sched;
    std::vector<TimePoint>* out;
    void arm(TimePoint at) {
      if (at > TimePoint(microseconds(100))) return;
      sched->schedule_at(at, [this, at] {
        out->push_back(at);
        arm(at + microseconds(10));
      });
    }
  } ticker{&a.scheduler(), &ticks};
  ticker.arm(TimePoint(microseconds(10)));

  ParallelRunner runner({&sa, &sb},
                        {.threads = 1, .lookahead = microseconds(10)});
  runner.run_until(TimePoint(microseconds(100)));

  ASSERT_EQ(ticks.size(), 10u);
  // With Tmin stepping 10us per tick and a 10us lookahead, every window can
  // hold at most one tick, so at least 10 rounds were needed.
  EXPECT_GE(runner.rounds(), 10u);
  EXPECT_EQ(a.now(), TimePoint(microseconds(100)));
  EXPECT_EQ(b.now(), TimePoint(microseconds(100)));

  // run_until is repeatable: the next call picks up exactly where this one
  // stopped, and an event at exactly the target time executes.
  bool edge = false;
  b.scheduler().schedule_at(TimePoint(microseconds(200)), [&] { edge = true; });
  runner.run_until(TimePoint(microseconds(200)));
  EXPECT_TRUE(edge);
  EXPECT_EQ(b.now(), TimePoint(microseconds(200)));
}

// One synthetic cell: `n` shards, shard k ticking every (k+1)*3us up to
// 300us, each recording its firing times into its own (per-shard, so
// race-free) trace. Built fresh per run so thread counts can be compared.
struct SyntheticCell {
  std::vector<std::unique_ptr<Network>> nets;
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::vector<TimePoint>> traces;

  explicit SyntheticCell(int n) : traces(static_cast<std::size_t>(n)) {
    for (int k = 0; k < n; ++k) {
      nets.push_back(std::make_unique<Network>());
      shards.push_back(std::make_unique<Shard>(nets.back()->scheduler()));
      arm(k, TimePoint(microseconds(k + 1) * 3));
    }
  }

  void arm(int k, TimePoint at) {
    if (at > TimePoint(microseconds(300))) return;
    nets[static_cast<std::size_t>(k)]->scheduler().schedule_at(at, [this, k, at] {
      traces[static_cast<std::size_t>(k)].push_back(at);
      arm(k, at + microseconds(k + 1) * 3);
    });
  }

  [[nodiscard]] std::vector<Shard*> handles() {
    std::vector<Shard*> out;
    for (auto& s : shards) out.push_back(s.get());
    return out;
  }
};

TEST(ParallelRunner, ThreadCountDoesNotChangeExecutionOrRoundStructure) {
  constexpr int kShards = 4;
  std::vector<std::vector<TimePoint>> reference;
  std::uint64_t reference_rounds = 0;

  for (const int threads : {1, 2, 4, 8}) {
    SyntheticCell cell(kShards);
    ParallelRunner runner(cell.handles(),
                          {.threads = threads, .lookahead = microseconds(2)});
    runner.run_until(TimePoint(milliseconds(1)));

    for (int k = 0; k < kShards; ++k) {
      EXPECT_EQ(cell.nets[static_cast<std::size_t>(k)]->now(),
                TimePoint(milliseconds(1)));
    }
    if (threads == 1) {
      reference = cell.traces;
      reference_rounds = runner.rounds();
      ASSERT_EQ(reference[0].size(), 100u);  // 3us ticks through 300us
    } else {
      EXPECT_EQ(cell.traces, reference) << "threads=" << threads;
      EXPECT_EQ(runner.rounds(), reference_rounds) << "threads=" << threads;
    }
  }
}

// End-to-end miniature of the real wiring: two single-NIC regions joined by
// one cut segment. Region A's replica relays each local transmission into
// the channel; region B injects it at the producer-computed delivery time.
TEST(ParallelRunner, RelaysFramesAcrossShardsThroughChannels) {
  for (const int threads : {1, 2}) {
    Network net_a, net_b;
    LanSegment& lan_a = net_a.add_segment("cut");
    LanSegment& lan_b = net_b.add_segment("cut");
    Nic& tx = net_a.add_nic("tx", lan_a);
    Nic& rx = net_b.add_nic("rx", lan_b);

    std::vector<TimePoint> delivered;
    rx.set_rx_handler(
        [&](const ether::WireFrame&) { delivered.push_back(net_b.now()); });

    Shard shard_a(net_a.scheduler()), shard_b(net_b.scheduler());
    ShardChannel channel(lan_b);
    shard_b.add_inbound(channel);
    const Duration prop = microseconds(50);
    lan_a.set_relay([&channel, prop](TimePoint now, const Nic*,
                                     util::ByteView wire) {
      channel.push(now + prop, wire);
    });

    const ether::Frame frame = test_frame();
    const Duration ser = lan_a.serialization_delay(frame.wire_size());
    net_a.scheduler().schedule_at(TimePoint{}, [&] { tx.transmit(frame); });

    ParallelRunner runner({&shard_a, &shard_b},
                          {.threads = threads, .lookahead = prop});
    runner.run_until(TimePoint(milliseconds(1)));

    ASSERT_EQ(delivered.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(delivered[0], TimePoint{} + ser + prop) << "threads=" << threads;
    // Carried stats belong to the producing replica alone.
    EXPECT_EQ(lan_a.stats().frames_carried, 1u);
    EXPECT_EQ(lan_b.stats().frames_carried, 0u);
  }
}

}  // namespace
}  // namespace ab::netsim
