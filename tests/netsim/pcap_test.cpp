#include "src/netsim/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/netsim/network.h"

namespace ab::netsim {
namespace {

util::ByteBuffer read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return util::ByteBuffer(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
}

struct TempPath {
  std::string path;
  TempPath() {
    char buf[] = "/tmp/ab_pcap_XXXXXX";
    const int fd = mkstemp(buf);
    if (fd >= 0) close(fd);
    path = buf;
  }
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(PcapWriter, WritesGlobalHeader) {
  TempPath tmp;
  {
    PcapWriter writer(tmp.path);
    writer.flush();
  }
  const util::ByteBuffer bytes = read_file(tmp.path);
  ASSERT_EQ(bytes.size(), 24u);
  // Little-endian magic 0xA1B2C3D4.
  EXPECT_EQ(bytes[0], 0xD4);
  EXPECT_EQ(bytes[1], 0xC3);
  EXPECT_EQ(bytes[2], 0xB2);
  EXPECT_EQ(bytes[3], 0xA1);
  // Linktype Ethernet (1) in the last word.
  EXPECT_EQ(bytes[20], 1);
}

TEST(PcapWriter, RecordsFramesWithTimestamps) {
  TempPath tmp;
  Network net;
  auto& lan = net.add_segment("lan");
  auto& a = net.add_nic("a", lan);
  net.add_nic("b", lan);
  {
    PcapWriter writer(tmp.path);
    writer.watch(lan);
    net.scheduler().schedule_after(seconds(2), [&a] {
      a.transmit(ether::Frame::ethernet2(ether::MacAddress::broadcast(), a.mac(),
                                         ether::EtherType::kExperimental,
                                         util::ByteBuffer(50, 0x1)));
    });
    net.scheduler().run();
    EXPECT_EQ(writer.frames_written(), 1u);
    writer.flush();

    const util::ByteBuffer bytes = read_file(tmp.path);
    ASSERT_GT(bytes.size(), 24u + 16u);
    // Record header at offset 24: ts_sec (LE) == 2.
    EXPECT_EQ(bytes[24], 2);
    EXPECT_EQ(bytes[25], 0);
    // incl_len == orig_len == wire size (64B min frame + FCS... our encode
    // yields 68 bytes for a 50-byte payload: 14 + 50 + 4).
    const std::uint32_t incl = bytes[32] | (bytes[33] << 8);
    EXPECT_EQ(incl, 68u);
    // The payload after the record header decodes as an Ethernet frame.
    const util::ByteView frame_bytes(bytes.data() + 40, incl);
    EXPECT_TRUE(ether::Frame::decode(frame_bytes).has_value());
  }
}

TEST(PcapWriter, MultipleFramesAppend) {
  TempPath tmp;
  Network net;
  auto& lan = net.add_segment("lan");
  auto& a = net.add_nic("a", lan);
  net.add_nic("b", lan);
  PcapWriter writer(tmp.path);
  writer.watch(lan);
  for (int i = 0; i < 5; ++i) {
    a.transmit(ether::Frame::ethernet2(ether::MacAddress::broadcast(), a.mac(),
                                       ether::EtherType::kExperimental, {1}));
  }
  net.scheduler().run();
  EXPECT_EQ(writer.frames_written(), 5u);
}

TEST(PcapWriter, RejectsUnwritablePath) {
  EXPECT_THROW(PcapWriter("/nonexistent-dir/x.pcap"), std::runtime_error);
}

}  // namespace
}  // namespace ab::netsim
