#include "src/netsim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace ab::netsim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), TimePoint{});
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_after(milliseconds(30), [&] { order.push_back(3); });
  s.schedule_after(milliseconds(10), [&] { order.push_back(1); });
  s.schedule_after(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(30));
}

TEST(Scheduler, TiesBreakInSubmissionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_after(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  Scheduler s;
  TimePoint seen{};
  s.schedule_after(seconds(2), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen.time_since_epoch(), seconds(2));
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) s.schedule_after(milliseconds(1), chain);
  };
  s.schedule_after(milliseconds(1), chain);
  s.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(5));
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(10), [&] { ++fired; });
  s.schedule_after(milliseconds(30), [&] { ++fired; });
  const std::size_t n = s.run_until(TimePoint{} + milliseconds(20));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(20));
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilIncludesEventsAtTheBoundary) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(20), [&] { ++fired; });
  s.run_until(TimePoint{} + milliseconds(20));
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RunForIsRelative) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(5), [&] { ++fired; });
  s.run_for(milliseconds(10));
  s.schedule_after(milliseconds(5), [&] { ++fired; });
  s.run_for(milliseconds(10));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(20));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  const EventId id = s.schedule_after(milliseconds(1), [&] { ++fired; });
  s.schedule_after(milliseconds(2), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelAfterFireIsHarmless) {
  Scheduler s;
  const EventId id = s.schedule_after(milliseconds(1), [] {});
  s.run();
  s.cancel(id);  // no effect, no crash
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, CancelOfUnknownSeqIsHarmless) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(1), [&] { ++fired; });
  s.cancel(EventId{});       // the null id
  s.cancel(EventId{12345});  // never issued
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, PendingAndEmptyAreExactUnderCancellation) {
  Scheduler s;
  const EventId a = s.schedule_after(milliseconds(1), [] {});
  const EventId b = s.schedule_after(milliseconds(2), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_FALSE(s.empty());
  s.cancel(b);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.run(), 0u);
}

TEST(Scheduler, StaleCancelsDoNotAccumulate) {
  // Cancelling events that already fired must not leave bookkeeping behind:
  // pending() stays exact through many fire-then-cancel rounds (the leak
  // would have made a long-lived simulation's cancelled-set grow forever).
  Scheduler s;
  for (int round = 0; round < 100; ++round) {
    const EventId id = s.schedule_after(milliseconds(1), [] {});
    s.run();
    s.cancel(id);  // stale: already fired
    EXPECT_EQ(s.pending(), 0u);
    EXPECT_TRUE(s.empty());
  }
  int fired = 0;
  s.schedule_after(milliseconds(1), [&] { ++fired; });
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RunUntilDoesNotOvershootPastACancelledHead) {
  Scheduler s;
  int fired = 0;
  const EventId head = s.schedule_after(milliseconds(10), [&] { ++fired; });
  s.schedule_after(milliseconds(100), [&] { ++fired; });
  s.cancel(head);
  // The cancelled head must not let the t=100 event run inside a t<=50 run.
  EXPECT_EQ(s.run_until(TimePoint{} + milliseconds(50)), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(50));
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, StepRunsExactlyOneEvent) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(1), [&] { ++fired; });
  s.schedule_after(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  s.schedule_after(seconds(1), [] {});
  s.run();
  TimePoint seen{};
  s.schedule_at(TimePoint{}, [&] { seen = s.now(); });  // in the past
  s.run();
  EXPECT_EQ(seen.time_since_epoch(), seconds(1));
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(-5), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RejectsNullCallback) {
  Scheduler s;
  EXPECT_THROW(s.schedule_after(milliseconds(1), nullptr), std::invalid_argument);
}

TEST(Scheduler, RejectsEmptyStdFunctionAtTheDoor) {
  // A null std::function (or function pointer) must fail at the call site,
  // not as a bad_function_call when the event fires.
  Scheduler s;
  std::function<void()> empty;
  EXPECT_THROW(s.schedule_after(milliseconds(1), std::move(empty)),
               std::invalid_argument);
  void (*null_fp)() = nullptr;
  EXPECT_THROW(s.schedule_after(milliseconds(1), null_fp), std::invalid_argument);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunWithEventBudget) {
  Scheduler s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) s.schedule_after(milliseconds(i), [&] { ++fired; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, StaleCancelCannotKillASlotReuser) {
  // Cancelling the same id twice must not cancel whichever event recycled
  // the slot in between: the generation stamp makes the second cancel a
  // no-op.
  Scheduler s;
  int fired = 0;
  const EventId a = s.schedule_after(milliseconds(1), [&] { ++fired; });
  s.cancel(a);
  s.schedule_after(milliseconds(1), [&] { ++fired; });  // may reuse a's slot
  s.cancel(a);                                          // stale: must not hit b
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelOfOwnIdInsideCallbackIsHarmless) {
  Scheduler s;
  int fired = 0;
  EventId id{};
  id = s.schedule_after(milliseconds(1), [&] {
    ++fired;
    s.cancel(id);  // already firing: stale no-op
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, ManyCancelsKeepHeapExact) {
  // Interleaved schedule/cancel at scale: pending() is exact and the
  // survivors fire in time order.
  Scheduler s;
  std::vector<EventId> ids;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(s.schedule_after(milliseconds(100 - i), [&order, i] {
      order.push_back(i);
    }));
  }
  for (int i = 0; i < 100; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending(), 50u);
  s.run();
  ASSERT_EQ(order.size(), 50u);
  // Odd i scheduled at (100 - i) ms: later i fires earlier.
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_GT(order[k - 1], order[k]);
  }
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 4; ++i) s.schedule_after(milliseconds(1), [] {});
  s.run();
  EXPECT_EQ(s.executed(), 4u);
}

}  // namespace
}  // namespace ab::netsim
