#include "src/netsim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace ab::netsim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), TimePoint{});
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_after(milliseconds(30), [&] { order.push_back(3); });
  s.schedule_after(milliseconds(10), [&] { order.push_back(1); });
  s.schedule_after(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(30));
}

TEST(Scheduler, TiesBreakInSubmissionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_after(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  Scheduler s;
  TimePoint seen{};
  s.schedule_after(seconds(2), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen.time_since_epoch(), seconds(2));
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) s.schedule_after(milliseconds(1), chain);
  };
  s.schedule_after(milliseconds(1), chain);
  s.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(5));
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(10), [&] { ++fired; });
  s.schedule_after(milliseconds(30), [&] { ++fired; });
  const std::size_t n = s.run_until(TimePoint{} + milliseconds(20));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(20));
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilIncludesEventsAtTheBoundary) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(20), [&] { ++fired; });
  s.run_until(TimePoint{} + milliseconds(20));
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RunForIsRelative) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(5), [&] { ++fired; });
  s.run_for(milliseconds(10));
  s.schedule_after(milliseconds(5), [&] { ++fired; });
  s.run_for(milliseconds(10));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(20));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  const EventId id = s.schedule_after(milliseconds(1), [&] { ++fired; });
  s.schedule_after(milliseconds(2), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelAfterFireIsHarmless) {
  Scheduler s;
  const EventId id = s.schedule_after(milliseconds(1), [] {});
  s.run();
  s.cancel(id);  // no effect, no crash
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, CancelOfUnknownSeqIsHarmless) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(1), [&] { ++fired; });
  s.cancel(EventId{});       // the null id
  s.cancel(EventId{12345});  // never issued
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, PendingAndEmptyAreExactUnderCancellation) {
  Scheduler s;
  const EventId a = s.schedule_after(milliseconds(1), [] {});
  const EventId b = s.schedule_after(milliseconds(2), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_FALSE(s.empty());
  s.cancel(b);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.run(), 0u);
}

TEST(Scheduler, StaleCancelsDoNotAccumulate) {
  // Cancelling events that already fired must not leave bookkeeping behind:
  // pending() stays exact through many fire-then-cancel rounds (the leak
  // would have made a long-lived simulation's cancelled-set grow forever).
  Scheduler s;
  for (int round = 0; round < 100; ++round) {
    const EventId id = s.schedule_after(milliseconds(1), [] {});
    s.run();
    s.cancel(id);  // stale: already fired
    EXPECT_EQ(s.pending(), 0u);
    EXPECT_TRUE(s.empty());
  }
  int fired = 0;
  s.schedule_after(milliseconds(1), [&] { ++fired; });
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RunUntilDoesNotOvershootPastACancelledHead) {
  Scheduler s;
  int fired = 0;
  const EventId head = s.schedule_after(milliseconds(10), [&] { ++fired; });
  s.schedule_after(milliseconds(100), [&] { ++fired; });
  s.cancel(head);
  // The cancelled head must not let the t=100 event run inside a t<=50 run.
  EXPECT_EQ(s.run_until(TimePoint{} + milliseconds(50)), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(50));
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, StepRunsExactlyOneEvent) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(1), [&] { ++fired; });
  s.schedule_after(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  s.schedule_after(seconds(1), [] {});
  s.run();
  TimePoint seen{};
  s.schedule_at(TimePoint{}, [&] { seen = s.now(); });  // in the past
  s.run();
  EXPECT_EQ(seen.time_since_epoch(), seconds(1));
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(milliseconds(-5), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RejectsNullCallback) {
  Scheduler s;
  EXPECT_THROW(s.schedule_after(milliseconds(1), nullptr), std::invalid_argument);
}

TEST(Scheduler, RejectsEmptyStdFunctionAtTheDoor) {
  // A null std::function (or function pointer) must fail at the call site,
  // not as a bad_function_call when the event fires.
  Scheduler s;
  std::function<void()> empty;
  EXPECT_THROW(s.schedule_after(milliseconds(1), std::move(empty)),
               std::invalid_argument);
  void (*null_fp)() = nullptr;
  EXPECT_THROW(s.schedule_after(milliseconds(1), null_fp), std::invalid_argument);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunWithEventBudget) {
  Scheduler s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) s.schedule_after(milliseconds(i), [&] { ++fired; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, StaleCancelCannotKillASlotReuser) {
  // Cancelling the same id twice must not cancel whichever event recycled
  // the slot in between: the generation stamp makes the second cancel a
  // no-op.
  Scheduler s;
  int fired = 0;
  const EventId a = s.schedule_after(milliseconds(1), [&] { ++fired; });
  s.cancel(a);
  s.schedule_after(milliseconds(1), [&] { ++fired; });  // may reuse a's slot
  s.cancel(a);                                          // stale: must not hit b
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelOfOwnIdInsideCallbackIsHarmless) {
  Scheduler s;
  int fired = 0;
  EventId id{};
  id = s.schedule_after(milliseconds(1), [&] {
    ++fired;
    s.cancel(id);  // already firing: stale no-op
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, ManyCancelsKeepHeapExact) {
  // Interleaved schedule/cancel at scale: pending() is exact and the
  // survivors fire in time order.
  Scheduler s;
  std::vector<EventId> ids;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(s.schedule_after(milliseconds(100 - i), [&order, i] {
      order.push_back(i);
    }));
  }
  for (int i = 0; i < 100; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending(), 50u);
  s.run();
  ASSERT_EQ(order.size(), 50u);
  // Odd i scheduled at (100 - i) ms: later i fires earlier.
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_GT(order[k - 1], order[k]);
  }
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 4; ++i) s.schedule_after(milliseconds(1), [] {});
  s.run();
  EXPECT_EQ(s.executed(), 4u);
}

// ---------------------------------------------------------------------------
// Batched same-time runs (schedule_batch_at / BatchId)

namespace {

/// Builds a run of callbacks that append their label to `order`.
std::vector<Scheduler::Callback> labelled_batch(std::vector<int>& order, int first,
                                                int count) {
  std::vector<Scheduler::Callback> fns;
  for (int i = 0; i < count; ++i) {
    const int label = first + i;
    fns.emplace_back([&order, label] { order.push_back(label); });
  }
  return fns;
}

}  // namespace

TEST(SchedulerBatch, FiresEntriesInSubmissionOrderAtTheTimestamp) {
  Scheduler s;
  std::vector<int> order;
  auto fns = labelled_batch(order, 0, 5);
  s.schedule_batch_at(TimePoint{} + milliseconds(3), fns);
  EXPECT_EQ(s.pending(), 5u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(3));
  EXPECT_EQ(s.executed(), 5u);
}

TEST(SchedulerBatch, InterleavesFifoWithSinglesAtTheSameTimestamp) {
  // single, batch, single at one timestamp: firing order must be exactly
  // the submission order, the run occupying its k order numbers.
  Scheduler s;
  std::vector<int> order;
  const TimePoint when = TimePoint{} + milliseconds(1);
  s.schedule_at(when, [&order] { order.push_back(0); });
  auto fns = labelled_batch(order, 1, 3);
  s.schedule_batch_at(when, fns);
  s.schedule_at(when, [&order] { order.push_back(4); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerBatch, EmptyBatchIsANoOp) {
  Scheduler s;
  std::vector<Scheduler::Callback> none;
  const BatchId id = s.schedule_batch_at(TimePoint{} + milliseconds(1), none);
  EXPECT_EQ(id, BatchId{});
  EXPECT_TRUE(s.empty());
  s.cancel(id);  // null handle: harmless
  EXPECT_EQ(s.run(), 0u);
}

TEST(SchedulerBatch, NullCallbackInBatchThrowsBeforeAdmittingAnything) {
  Scheduler s;
  std::vector<Scheduler::Callback> fns;
  fns.emplace_back([] {});
  fns.emplace_back(std::function<void()>{});  // null
  EXPECT_THROW(s.schedule_batch_at(TimePoint{} + milliseconds(1), fns),
               std::invalid_argument);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerBatch, CancelRemovesTheWholeRun) {
  Scheduler s;
  std::vector<int> order;
  auto fns = labelled_batch(order, 0, 4);
  const BatchId id = s.schedule_batch_at(TimePoint{} + milliseconds(1), fns);
  s.schedule_at(TimePoint{} + milliseconds(2), [&order] { order.push_back(99); });
  EXPECT_EQ(s.pending(), 5u);
  s.cancel(id);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{99}));
}

TEST(SchedulerBatch, CancelAfterTheRunFiredIsHarmless) {
  Scheduler s;
  std::vector<int> order;
  auto fns = labelled_batch(order, 0, 2);
  const BatchId id = s.schedule_batch_at(TimePoint{} + milliseconds(1), fns);
  s.run();
  s.cancel(id);  // stale: the run completed
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
  // The recycled slot must not be killable through the stale BatchId.
  int fired = 0;
  s.schedule_after(milliseconds(1), [&fired] { ++fired; });
  s.cancel(id);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerBatch, StaleEventIdCannotKillARunInTheRecycledSlot) {
  // An EventId whose slot was recycled into a batch run must stay a no-op:
  // the generation stamp (and the run guard) protect all k entries.
  Scheduler s;
  std::vector<int> order;
  const EventId a = s.schedule_after(milliseconds(1), [&order] { order.push_back(-1); });
  s.cancel(a);
  auto fns = labelled_batch(order, 0, 3);
  s.schedule_batch_at(TimePoint{} + milliseconds(1), fns);  // may reuse a's slot
  s.cancel(a);  // stale
  EXPECT_EQ(s.pending(), 3u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerBatch, RunBudgetSplitsARunWithoutDroppingOrReordering) {
  // run(max_events) counts batch entries individually; a budget expiring
  // mid-run leaves the remainder pending, in order.
  Scheduler s;
  std::vector<int> order;
  auto fns = labelled_batch(order, 0, 3);
  s.schedule_batch_at(TimePoint{} + milliseconds(1), fns);
  s.schedule_at(TimePoint{} + milliseconds(1), [&order] { order.push_back(3); });

  EXPECT_EQ(s.run(2), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(1));

  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerBatch, StepExecutesOneEntryAtATime) {
  Scheduler s;
  std::vector<int> order;
  auto fns = labelled_batch(order, 0, 3);
  s.schedule_batch_at(TimePoint{} + milliseconds(1), fns);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_TRUE(s.step());
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerBatch, RunUntilAtTheBoundaryDrainsTheWholeRun) {
  Scheduler s;
  std::vector<int> order;
  auto fns = labelled_batch(order, 0, 3);
  s.schedule_batch_at(TimePoint{} + milliseconds(10), fns);
  EXPECT_EQ(s.run_until(TimePoint{} + milliseconds(5)), 0u);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(s.pending(), 3u);
  EXPECT_EQ(s.run_until(TimePoint{} + milliseconds(10)), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerBatch, RunUntilAfterAPartialBudgetKeepsTheRemainder) {
  // A budget splits the run, then a run_until to the run's own timestamp
  // must finish exactly the remaining entries (satellite regression: the
  // stepping limits must not drop or reorder a split run).
  Scheduler s;
  std::vector<int> order;
  auto fns = labelled_batch(order, 0, 4);
  s.schedule_batch_at(TimePoint{} + milliseconds(2), fns);
  EXPECT_EQ(s.run(1), 1u);
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(s.run_until(TimePoint{} + milliseconds(2)), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerBatch, CancelMidExecutionDropsOnlyTheRemainingEntries) {
  Scheduler s;
  std::vector<int> order;
  BatchId id{};
  std::vector<Scheduler::Callback> fns;
  fns.emplace_back([&order] { order.push_back(0); });
  fns.emplace_back([&order, &s, &id] {
    order.push_back(1);
    s.cancel(id);  // from inside entry 1: entries 2 and 3 must not fire
  });
  fns.emplace_back([&order] { order.push_back(2); });
  fns.emplace_back([&order] { order.push_back(3); });
  id = s.schedule_batch_at(TimePoint{} + milliseconds(1), fns);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerBatch, CancelInsideTheLastEntryIsAStaleNoOp) {
  Scheduler s;
  int fired = 0;
  BatchId id{};
  std::vector<Scheduler::Callback> fns;
  fns.emplace_back([&fired, &s, &id] {
    ++fired;
    s.cancel(id);  // the run is already retired: harmless
  });
  id = s.schedule_batch_at(TimePoint{} + milliseconds(1), fns);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerBatch, EventsScheduledInsideAnEntryFireAfterTheRun) {
  // A same-timestamp event scheduled from inside entry 0 takes an order
  // number past the whole run, so it fires after entry k-1 -- exactly as
  // with k individual events.
  Scheduler s;
  std::vector<int> order;
  std::vector<Scheduler::Callback> fns;
  fns.emplace_back([&order, &s] {
    order.push_back(0);
    s.schedule_after(Duration::zero(), [&order] { order.push_back(9); });
  });
  fns.emplace_back([&order] { order.push_back(1); });
  fns.emplace_back([&order] { order.push_back(2); });
  s.schedule_batch_at(TimePoint{} + milliseconds(1), fns);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(SchedulerBatch, PastBatchTimeClampsToNow) {
  Scheduler s;
  s.schedule_after(seconds(1), [] {});
  s.run();
  std::vector<int> order;
  auto fns = labelled_batch(order, 0, 2);
  s.schedule_batch_at(TimePoint{}, fns);  // in the past
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(s.now().time_since_epoch(), seconds(1));
}

TEST(SchedulerBatch, ScheduleBatchAfterIsRelative) {
  Scheduler s;
  s.schedule_after(milliseconds(5), [] {});
  s.run();
  std::vector<int> order;
  auto fns = labelled_batch(order, 0, 2);
  s.schedule_batch_after(milliseconds(5), fns);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(10));
}

/// Builds a timed run of labelled callbacks at the given millisecond
/// offsets (non-decreasing).
std::vector<Scheduler::TimedEntry> labelled_run(std::vector<int>& order, int first,
                                                std::initializer_list<int> at_ms) {
  std::vector<Scheduler::TimedEntry> entries;
  int label = first;
  for (int ms : at_ms) {
    Scheduler::TimedEntry e;
    e.when = TimePoint{} + milliseconds(ms);
    const int this_label = label++;
    e.fn = [&order, this_label] { order.push_back(this_label); };
    entries.push_back(std::move(e));
  }
  return entries;
}

TEST(SchedulerTimedRun, FiresEntriesAtTheirOwnTimes) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1, 3, 3, 7});
  s.schedule_run_at(entries);
  EXPECT_EQ(s.pending(), 4u);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(1));
  EXPECT_TRUE(s.step());
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(3));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(7));
  EXPECT_EQ(s.executed(), 4u);
}

TEST(SchedulerTimedRun, InterleavesWithSinglesExactlyLikeIndividualEvents) {
  // Singles scheduled BEFORE the run at an inner entry's timestamp fire
  // before that entry; singles scheduled AFTER fire after it -- the run's
  // entries carry the consecutive order numbers individual schedule_at
  // calls would have had.
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(TimePoint{} + milliseconds(3), [&order] { order.push_back(-1); });
  auto entries = labelled_run(order, 0, {1, 3, 5});
  s.schedule_run_at(entries);
  s.schedule_at(TimePoint{} + milliseconds(3), [&order] { order.push_back(-2); });
  s.schedule_at(TimePoint{} + milliseconds(2), [&order] { order.push_back(-3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, -3, -1, 1, -2, 2}));
}

TEST(SchedulerTimedRun, RunUntilSplitsAtTheTimeBoundary) {
  // run_until between entry times executes exactly the due prefix; the
  // remainder stays pending at its own later times.
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1, 4, 8});
  s.schedule_run_at(entries);
  EXPECT_EQ(s.run_until(TimePoint{} + milliseconds(5)), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(5));  // clock advances
  EXPECT_EQ(s.run_until(TimePoint{} + milliseconds(8)), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTimedRun, BudgetSplitsWithoutDroppingOrReordering) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1, 2, 3});
  s.schedule_run_at(entries);
  s.schedule_at(TimePoint{} + milliseconds(2), [&order] { order.push_back(9); });
  EXPECT_EQ(s.run(2), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_EQ(s.run(), 2u);
  // The single at 2 ms was scheduled after the run, so it fires after the
  // run's 2 ms entry but before the 3 ms one.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 9, 2}));
}

TEST(SchedulerTimedRun, CancelRemovesEverythingStillPending) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1, 2, 3, 4});
  const BatchId id = s.schedule_run_at(entries);
  EXPECT_EQ(s.run(1), 1u);  // entry 0 fired
  s.cancel(id);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_TRUE(s.empty());
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
}

TEST(SchedulerTimedRun, CancelFromInsideAnEntryDropsTheRemainder) {
  Scheduler s;
  std::vector<int> order;
  BatchId id{};
  std::vector<Scheduler::TimedEntry> entries;
  Scheduler::TimedEntry e0;
  e0.when = TimePoint{} + milliseconds(1);
  e0.fn = [&order, &s, &id] {
    order.push_back(0);
    s.cancel(id);
  };
  entries.push_back(std::move(e0));
  Scheduler::TimedEntry e1;
  e1.when = TimePoint{} + milliseconds(2);
  e1.fn = [&order] { order.push_back(1); };
  entries.push_back(std::move(e1));
  id = s.schedule_run_at(entries);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTimedRun, DecreasingTimesThrowBeforeAdmittingAnything) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {3, 3, 1});
  EXPECT_THROW(s.schedule_run_at(entries), std::invalid_argument);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTimedRun, NullCallbackThrowsBeforeAdmittingAnything) {
  Scheduler s;
  std::vector<Scheduler::TimedEntry> entries;
  Scheduler::TimedEntry ok;
  ok.when = TimePoint{} + milliseconds(1);
  ok.fn = [] {};
  entries.push_back(std::move(ok));
  entries.emplace_back();  // null callback
  entries.back().when = TimePoint{} + milliseconds(2);
  EXPECT_THROW(s.schedule_run_at(entries), std::invalid_argument);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTimedRun, EmptyRunIsANoOp) {
  Scheduler s;
  std::vector<Scheduler::TimedEntry> none;
  const BatchId id = s.schedule_run_at(none);
  EXPECT_EQ(id, BatchId{});
  EXPECT_TRUE(s.empty());
  s.cancel(id);
  EXPECT_EQ(s.run(), 0u);
}

TEST(SchedulerTimedRun, PastTimesClampToNow) {
  Scheduler s;
  s.schedule_after(seconds(1), [] {});
  s.run();
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1, 2000});  // 1 ms is in the past
  s.schedule_run_at(entries);
  EXPECT_EQ(s.run(1), 1u);
  EXPECT_EQ(s.now().time_since_epoch(), seconds(1));  // clamped, not rewound
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(s.now().time_since_epoch(), seconds(2));
}

TEST(SchedulerTimedRun, OneInsertPerRun) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1, 2, 3, 4});
  const std::uint64_t inserts_before = s.inserts();
  s.schedule_run_at(entries);
  EXPECT_EQ(s.inserts() - inserts_before, 1u);
  EXPECT_EQ(s.scheduled(), 4u);
  s.run();
  EXPECT_EQ(order.size(), 4u);
}

TEST(SchedulerBatch, ManyRunsInterleavedWithCancelsKeepPendingExact) {
  Scheduler s;
  std::vector<int> order;
  std::vector<BatchId> ids;
  int label = 0;
  for (int b = 0; b < 50; ++b) {
    auto fns = labelled_batch(order, label, 4);
    label += 4;
    ids.push_back(
        s.schedule_batch_at(TimePoint{} + milliseconds(1 + b % 3), fns));
  }
  EXPECT_EQ(s.pending(), 200u);
  for (std::size_t b = 0; b < ids.size(); b += 2) s.cancel(ids[b]);
  EXPECT_EQ(s.pending(), 100u);
  s.run();
  EXPECT_EQ(order.size(), 100u);
  EXPECT_EQ(s.executed(), 100u);
  EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------------------
// try_extend_run: appending to an in-flight timed run

Scheduler::TimedEntry labelled_entry(std::vector<int>& order, int label, int ms) {
  Scheduler::TimedEntry e;
  e.when = TimePoint{} + milliseconds(ms);
  e.fn = [&order, label] { order.push_back(label); };
  return e;
}

TEST(SchedulerTimedRunExtend, AppendsPastTheTailWithNoNewInsert) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1, 2, 3});
  const BatchId id = s.schedule_run_at(entries);
  const std::uint64_t inserts_before = s.inserts();
  EXPECT_TRUE(s.try_extend_run(id, labelled_entry(order, 3, 4)));
  EXPECT_EQ(s.inserts(), inserts_before);  // the run absorbed it
  EXPECT_EQ(s.pending(), 4u);
  EXPECT_EQ(s.scheduled(), 4u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(4));
}

TEST(SchedulerTimedRunExtend, ExtensionInterleavesLikeAFreshSchedule) {
  // A single event scheduled between the run and its extension, at the
  // extension's own timestamp, must fire BEFORE the extension -- the
  // appended entry is "newer" and takes a later order number.
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1, 2});
  const BatchId id = s.schedule_run_at(entries);
  s.schedule_at(TimePoint{} + milliseconds(5), [&order] { order.push_back(-1); });
  EXPECT_TRUE(s.try_extend_run(id, labelled_entry(order, 2, 5)));
  s.schedule_at(TimePoint{} + milliseconds(5), [&order] { order.push_back(-2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, -1, 2, -2}));
}

TEST(SchedulerTimedRunExtend, ExtensionFromInsideTheRunRespectsRetirement) {
  // pop_and_run retires the slot BEFORE the run's last entry fires, so a
  // self-extension from inside that entry is already stale and must fail
  // -- that is what sends the NIC's saturated-transmit path to its FIFO
  // fallback (its run_remaining_ guard is 0 by then). From any EARLIER
  // entry the run is still live and the extension lands.
  Scheduler s;
  std::vector<int> order;
  BatchId id{};
  std::vector<Scheduler::TimedEntry> entries;
  Scheduler::TimedEntry e0;
  e0.when = TimePoint{} + milliseconds(1);
  e0.fn = [&] {
    order.push_back(0);
    EXPECT_TRUE(s.try_extend_run(id, labelled_entry(order, 1, 3)));
  };
  entries.push_back(std::move(e0));
  Scheduler::TimedEntry e9;
  e9.when = TimePoint{} + milliseconds(2);
  e9.fn = [&] { order.push_back(9); };
  entries.push_back(std::move(e9));
  id = s.schedule_run_at(entries);
  s.run();
  // The 3ms extension appended from the 1ms entry fired as the run's tail.
  EXPECT_EQ(order, (std::vector<int>{0, 9, 1}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(3));

  // Same shape, one entry: extending from inside the run's LAST entry
  // finds the stamp already stale and reports false, leaving the clock
  // and the order log untouched by the rejected entry.
  std::vector<int> solo;
  BatchId solo_id{};
  std::vector<Scheduler::TimedEntry> solo_entries;
  Scheduler::TimedEntry last;
  last.when = TimePoint{} + milliseconds(10);
  last.fn = [&] {
    solo.push_back(0);
    EXPECT_FALSE(s.try_extend_run(solo_id, labelled_entry(solo, 1, 30)));
  };
  solo_entries.push_back(std::move(last));
  solo_id = s.schedule_run_at(solo_entries);
  s.run();
  EXPECT_EQ(solo, (std::vector<int>{0}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(10));
}

TEST(SchedulerTimedRunExtend, StaleIdRejected) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1});
  const BatchId id = s.schedule_run_at(entries);
  s.run();  // the run fires and retires; the stamp goes stale
  EXPECT_FALSE(s.try_extend_run(id, labelled_entry(order, 9, 5)));
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.try_extend_run(BatchId{}, labelled_entry(order, 9, 5)));
}

TEST(SchedulerTimedRunExtend, CancelledRunRejected) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1, 2});
  const BatchId id = s.schedule_run_at(entries);
  s.cancel(id);
  EXPECT_FALSE(s.try_extend_run(id, labelled_entry(order, 9, 5)));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTimedRunExtend, SameTimeBatchRejected) {
  // Only TIMED runs extend: a same-time batch has no per-entry times to
  // append to.
  Scheduler s;
  std::vector<int> order;
  std::vector<Scheduler::Callback> fns;
  fns.emplace_back([&order] { order.push_back(0); });
  const BatchId id = s.schedule_batch_at(TimePoint{} + milliseconds(1), fns);
  EXPECT_FALSE(s.try_extend_run(id, labelled_entry(order, 9, 5)));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
}

TEST(SchedulerTimedRunExtend, NonMonotoneExtensionRejected) {
  // An entry before the run's tail time cannot be absorbed (the run's
  // heap key would lie); the caller falls back to a normal schedule.
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {2, 6});
  const BatchId id = s.schedule_run_at(entries);
  EXPECT_FALSE(s.try_extend_run(id, labelled_entry(order, 9, 4)));
  EXPECT_EQ(s.pending(), 2u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(SchedulerTimedRunExtend, NullCallbackThrows) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1});
  const BatchId id = s.schedule_run_at(entries);
  Scheduler::TimedEntry null_entry;
  null_entry.when = TimePoint{} + milliseconds(2);
  EXPECT_THROW(s.try_extend_run(id, std::move(null_entry)),
               std::invalid_argument);
  EXPECT_EQ(s.pending(), 1u);  // nothing was admitted
}

TEST(SchedulerTimedRunExtend, RepeatedExtensionsKeepFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  auto entries = labelled_run(order, 0, {1});
  const BatchId id = s.schedule_run_at(entries);
  const std::uint64_t inserts_before = s.inserts();
  for (int i = 1; i <= 16; ++i) {
    EXPECT_TRUE(s.try_extend_run(id, labelled_entry(order, i, 1 + i)));
  }
  EXPECT_EQ(s.inserts(), inserts_before);
  s.run();
  std::vector<int> expect;
  for (int i = 0; i <= 16; ++i) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace ab::netsim
