// TopologyBuilder shape math: segment counts, wiring plans, overrides,
// host attachment plans, and validation -- all without any bridge layer.
#include "src/netsim/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

namespace ab::netsim {
namespace {

TopologySpec spec_of(TopologyShape shape, int nodes, int hosts = 0) {
  TopologySpec spec;
  spec.shape = shape;
  spec.nodes = nodes;
  spec.hosts_per_lan = hosts;
  return spec;
}

TEST(TopologyBuilder, LineWiring) {
  Network net;
  const Topology t = TopologyBuilder(net).build(spec_of(TopologyShape::kLine, 4));
  ASSERT_EQ(t.lans.size(), 5u);
  ASSERT_EQ(t.node_ports.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto& ports = t.node_ports[static_cast<std::size_t>(i)];
    ASSERT_EQ(ports.size(), 2u);
    EXPECT_EQ(ports[0], t.lans[static_cast<std::size_t>(i)]);
    EXPECT_EQ(ports[1], t.lans[static_cast<std::size_t>(i + 1)]);
  }
  EXPECT_EQ(t.node_names[0], "bridge0");
  EXPECT_EQ(net.find_segment("lan0"), t.lans[0]);
}

TEST(TopologyBuilder, RingWrapsAround) {
  Network net;
  const Topology t = TopologyBuilder(net).build(spec_of(TopologyShape::kRing, 5));
  ASSERT_EQ(t.lans.size(), 5u);
  EXPECT_EQ(t.node_ports[4][0], t.lans[4]);
  EXPECT_EQ(t.node_ports[4][1], t.lans[0]);  // the wrap that makes the loop
}

TEST(TopologyBuilder, StarSharesTheHub) {
  Network net;
  const Topology t = TopologyBuilder(net).build(spec_of(TopologyShape::kStar, 6));
  ASSERT_EQ(t.lans.size(), 7u);
  for (int i = 0; i < 6; ++i) {
    const auto& ports = t.node_ports[static_cast<std::size_t>(i)];
    EXPECT_EQ(ports[0], t.lans[static_cast<std::size_t>(i + 1)]);  // own leaf
    EXPECT_EQ(ports[1], t.lans[0]);                                // the hub
  }
}

TEST(TopologyBuilder, TreeParentsAreConsistent) {
  Network net;
  TopologySpec spec = spec_of(TopologyShape::kTree, 7);
  spec.tree_arity = 2;
  const Topology t = TopologyBuilder(net).build(spec);
  ASSERT_EQ(t.lans.size(), 8u);
  // Node 0 hangs off the root LAN; its down-segment is lan1.
  EXPECT_EQ(t.node_ports[0][0], t.lans[0]);
  EXPECT_EQ(t.node_ports[0][1], t.lans[1]);
  // Nodes 1 and 2 are node 0's children: their up-port is node 0's
  // down-segment.
  EXPECT_EQ(t.node_ports[1][0], t.lans[1]);
  EXPECT_EQ(t.node_ports[2][0], t.lans[1]);
  // Nodes 3 and 4 hang off node 1's down-segment (lan2).
  EXPECT_EQ(t.node_ports[3][0], t.lans[2]);
  EXPECT_EQ(t.node_ports[4][0], t.lans[2]);
}

TEST(TopologyBuilder, MeshIsFullyConnectedAndLoopFreePerPair) {
  Network net;
  const int n = 5;
  const Topology t = TopologyBuilder(net).build(spec_of(TopologyShape::kMesh, n));
  ASSERT_EQ(t.lans.size(), static_cast<std::size_t>(n * (n - 1) / 2));
  // Every node has n-1 ports; every pair of nodes shares exactly one LAN.
  for (const auto& ports : t.node_ports) EXPECT_EQ(ports.size(), 4u);
  std::set<const LanSegment*> used;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const LanSegment* shared = nullptr;
      for (auto* pa : t.node_ports[static_cast<std::size_t>(a)]) {
        for (auto* pb : t.node_ports[static_cast<std::size_t>(b)]) {
          if (pa == pb) {
            EXPECT_EQ(shared, nullptr) << "pair shares two segments";
            shared = pa;
          }
        }
      }
      ASSERT_NE(shared, nullptr) << "pair " << a << "," << b << " unconnected";
      EXPECT_TRUE(used.insert(shared).second)
          << "segment serves more than one pair";
    }
  }
}

TEST(TopologyBuilder, LanOverridesApply) {
  Network net;
  TopologySpec spec = spec_of(TopologyShape::kLine, 2);
  spec.lan.bit_rate = 100e6;
  LanConfig slow;
  slow.bit_rate = 10e6;
  slow.loss = 0.25;
  spec.lan_overrides[1] = slow;
  const Topology t = TopologyBuilder(net).build(spec);
  EXPECT_EQ(t.lans[0]->config().bit_rate, 100e6);
  EXPECT_EQ(t.lans[1]->config().bit_rate, 10e6);
  EXPECT_EQ(t.lans[1]->config().loss, 0.25);
  EXPECT_EQ(t.lans[2]->config().bit_rate, 100e6);
}

TEST(TopologyBuilder, HostPlanCoversEveryLan) {
  Network net;
  const Topology t =
      TopologyBuilder(net).build(spec_of(TopologyShape::kRing, 3, /*hosts=*/2));
  ASSERT_EQ(t.hosts.size(), 6u);
  EXPECT_EQ(t.hosts[0].lan, 0);
  EXPECT_EQ(t.hosts[0].index, 0);
  EXPECT_EQ(t.hosts[0].name, "host0_0");
  EXPECT_EQ(t.hosts[5].lan, 2);
  EXPECT_EQ(t.hosts[5].index, 1);
}

TEST(TopologyBuilder, PrefixKeepsTopologiesApart) {
  Network net;
  TopologySpec a = spec_of(TopologyShape::kRing, 3);
  a.prefix = "a.";
  TopologySpec b = spec_of(TopologyShape::kRing, 3);
  b.prefix = "b.";
  TopologyBuilder builder(net);
  (void)builder.build(a);
  (void)builder.build(b);  // would throw on duplicate segment names
  EXPECT_NE(net.find_segment("a.lan0"), nullptr);
  EXPECT_NE(net.find_segment("b.lan0"), nullptr);
}

TEST(TopologyBuilder, LabelNamesShapeAndSize) {
  EXPECT_EQ(spec_of(TopologyShape::kRing, 32, 4).label(), "ring-32x4");
  EXPECT_EQ(spec_of(TopologyShape::kMesh, 6).label(), "mesh-6x0");
  // Random shapes carry their generation parameters: cells differing only
  // in seed or degree must stay distinguishable in bench JSON.
  TopologySpec kreg = spec_of(TopologyShape::kRandomKRegular, 32, 1);
  kreg.degree = 4;
  kreg.seed = 7;
  EXPECT_EQ(kreg.label(), "kregular-32x1-d4-s7");
  TopologySpec sf = spec_of(TopologyShape::kScaleFree, 16, 2);
  sf.attach = 3;
  sf.seed = 9;
  EXPECT_EQ(sf.label(), "scalefree-16x2-a3-s9");
}

TEST(TopologyBuilder, RejectsMalformedSpecs) {
  Network net;
  TopologyBuilder builder(net);
  EXPECT_THROW(builder.build(spec_of(TopologyShape::kLine, 0)), std::invalid_argument);
  EXPECT_THROW(builder.build(spec_of(TopologyShape::kMesh, 1)), std::invalid_argument);
  EXPECT_THROW(builder.build(spec_of(TopologyShape::kRing, 3, -1)),
               std::invalid_argument);
  TopologySpec bad_tree = spec_of(TopologyShape::kTree, 3);
  bad_tree.tree_arity = 0;
  EXPECT_THROW(builder.build(bad_tree), std::invalid_argument);
}

TEST(TopologyBuilder, SegmentAndPortCountsMatchBuild) {
  for (const TopologyShape shape :
       {TopologyShape::kLine, TopologyShape::kRing, TopologyShape::kStar,
        TopologyShape::kTree, TopologyShape::kMesh, TopologyShape::kRandomKRegular,
        TopologyShape::kScaleFree}) {
    Network net;
    TopologySpec spec = spec_of(shape, 6);
    spec.degree = 2;
    spec.attach = 2;
    const Topology t = TopologyBuilder(net).build(spec);
    EXPECT_EQ(t.lans.size(),
              static_cast<std::size_t>(TopologyBuilder::segment_count(spec)));
    for (int i = 0; i < spec.nodes; ++i) {
      EXPECT_EQ(t.node_ports[static_cast<std::size_t>(i)].size(),
                static_cast<std::size_t>(TopologyBuilder::port_count(spec, i)));
    }
  }
}

// ---------------------------------------------------------------------------
// Random shapes: seeded, connectivity-checked graph generation.

namespace {

/// True if the edge list spans all `n` nodes in one component.
bool edges_connected(int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> stack{0};
  seen[0] = 1;
  while (!stack.empty()) {
    const int at = stack.back();
    stack.pop_back();
    for (const auto& [a, b] : edges) {
      const int peer = a == at ? b : (b == at ? a : -1);
      if (peer >= 0 && !seen[static_cast<std::size_t>(peer)]) {
        seen[static_cast<std::size_t>(peer)] = 1;
        stack.push_back(peer);
      }
    }
  }
  for (const int s : seen) {
    if (!s) return false;
  }
  return true;
}

}  // namespace

TEST(TopologyBuilder, KRegularIsRegularSimpleConnectedAndSeedStable) {
  TopologySpec spec = spec_of(TopologyShape::kRandomKRegular, 16);
  spec.degree = 4;
  for (const std::uint64_t seed : {1ull, 2ull, 99ull}) {
    spec.seed = seed;
    const auto edges = TopologyBuilder::random_edges(spec);
    ASSERT_EQ(edges.size(), 32u);  // 16*4/2
    std::vector<int> degree(16, 0);
    std::set<std::pair<int, int>> unique_edges;
    for (const auto& [a, b] : edges) {
      EXPECT_NE(a, b) << "self loop";
      EXPECT_TRUE(unique_edges.insert({a, b}).second) << "parallel edge";
      ++degree[static_cast<std::size_t>(a)];
      ++degree[static_cast<std::size_t>(b)];
    }
    for (const int d : degree) EXPECT_EQ(d, 4);
    EXPECT_TRUE(edges_connected(16, edges));
    // Determinism: the same spec regenerates the same graph.
    EXPECT_EQ(edges, TopologyBuilder::random_edges(spec));
  }
  // Different seeds explore different graphs (overwhelmingly likely).
  spec.seed = 1;
  const auto a = TopologyBuilder::random_edges(spec);
  spec.seed = 2;
  EXPECT_NE(a, TopologyBuilder::random_edges(spec));
}

TEST(TopologyBuilder, ScaleFreeIsConnectedSeedStableAndSkewed) {
  TopologySpec spec = spec_of(TopologyShape::kScaleFree, 40);
  spec.attach = 2;
  spec.seed = 5;
  const auto edges = TopologyBuilder::random_edges(spec);
  ASSERT_EQ(edges.size(),
            static_cast<std::size_t>(TopologyBuilder::segment_count(spec)));
  EXPECT_TRUE(edges_connected(40, edges));
  EXPECT_EQ(edges, TopologyBuilder::random_edges(spec));
  // Preferential attachment concentrates degree: some hub must beat the
  // minimum degree (attach) by a wide margin.
  std::vector<int> degree(40, 0);
  for (const auto& [a, b] : edges) {
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
  }
  EXPECT_GE(*std::max_element(degree.begin(), degree.end()), 3 * spec.attach);
  for (const int d : degree) EXPECT_GE(d, spec.attach);
}

TEST(TopologyBuilder, RandomShapeValidation) {
  Network net;
  TopologyBuilder builder(net);
  TopologySpec odd = spec_of(TopologyShape::kRandomKRegular, 5);
  odd.degree = 3;  // 5*3 odd: no such graph
  EXPECT_THROW(builder.build(odd), std::invalid_argument);
  TopologySpec too_dense = spec_of(TopologyShape::kRandomKRegular, 4);
  too_dense.degree = 4;
  EXPECT_THROW(builder.build(too_dense), std::invalid_argument);
  TopologySpec matching = spec_of(TopologyShape::kRandomKRegular, 6);
  matching.degree = 1;  // a perfect matching can never be connected
  EXPECT_THROW(builder.build(matching), std::invalid_argument);
  TopologySpec tiny_sf = spec_of(TopologyShape::kScaleFree, 2);
  tiny_sf.attach = 2;
  EXPECT_THROW(builder.build(tiny_sf), std::invalid_argument);
  EXPECT_THROW(TopologyBuilder::random_edges(spec_of(TopologyShape::kRing, 3)),
               std::invalid_argument);
}

TEST(TopologyBuilder, RandomShapeBuildMatchesEdgeList) {
  Network net;
  TopologySpec spec = spec_of(TopologyShape::kRandomKRegular, 8);
  spec.degree = 4;
  spec.seed = 11;
  const auto edges = TopologyBuilder::random_edges(spec);
  const Topology t = TopologyBuilder(net).build(spec);
  ASSERT_EQ(t.lans.size(), edges.size());
  // Segment e connects exactly the two endpoints of edge e.
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto& [a, b] = edges[e];
    int touching = 0;
    for (int node = 0; node < spec.nodes; ++node) {
      const auto& ports = t.node_ports[static_cast<std::size_t>(node)];
      const bool has = std::find(ports.begin(), ports.end(), t.lans[e]) != ports.end();
      if (has) {
        ++touching;
        EXPECT_TRUE(node == a || node == b);
      }
    }
    EXPECT_EQ(touching, 2);
  }
}

}  // namespace
}  // namespace ab::netsim
