#include "src/netsim/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/netsim/network.h"

namespace ab::netsim {
namespace {

/// Records its construction/destruction order into a shared log.
struct Tracked {
  explicit Tracked(int id, std::vector<int>* log) : id(id), log(log) {}
  ~Tracked() { log->push_back(id); }
  int id;
  std::vector<int>* log;
};

TEST(Arena, DestroysInReverseCreationOrder) {
  std::vector<int> log;
  {
    Arena arena;
    arena.create<Tracked>(1, &log);
    arena.create<Tracked>(2, &log);
    arena.create<Tracked>(3, &log);
    EXPECT_TRUE(log.empty());
  }
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
}

TEST(Arena, ResetDestroysAndArenaIsReusable) {
  std::vector<int> log;
  Arena arena;
  arena.create<Tracked>(1, &log);
  arena.create<Tracked>(2, &log);
  arena.reset();
  EXPECT_EQ(log, (std::vector<int>{2, 1}));
  EXPECT_EQ(arena.stats().objects, 0u);
  EXPECT_EQ(arena.stats().slabs, 0u);

  // Fresh creations after reset work and tear down again on destruction.
  log.clear();
  arena.create<Tracked>(7, &log);
  arena.reset();
  EXPECT_EQ(log, (std::vector<int>{7}));
}

TEST(Arena, PointersStayStableAcrossSlabGrowth) {
  // A tiny slab forces many slab allocations; earlier objects must not
  // move when later slabs are added (the NIC/HostStack contract).
  Arena arena(256);
  std::vector<std::uint64_t*> ptrs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ptrs.push_back(arena.create<std::uint64_t>(i));
  }
  EXPECT_GT(arena.stats().slabs, 1u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(*ptrs[i], i);
  }
}

TEST(Arena, OversizedAllocationGetsDedicatedSlab) {
  Arena arena(64);
  void* big = arena.allocate(4096, 16);
  ASSERT_NE(big, nullptr);
  // Usable immediately and for the arena's lifetime.
  auto* bytes = static_cast<std::byte*>(big);
  bytes[0] = std::byte{0xAA};
  bytes[4095] = std::byte{0x55};
  EXPECT_GE(arena.stats().bytes_reserved, 4096u);
}

TEST(Arena, TrivialTypesCostNoFinalizers) {
  Arena arena;
  arena.create<int>(41);
  arena.create<double>(1.5);
  EXPECT_EQ(arena.stats().objects, 2u);
  arena.reset();  // must not touch the (unregistered) trivial objects
  EXPECT_EQ(arena.stats().objects, 0u);
}

TEST(Arena, MoveTransfersOwnershipWithoutRunningDestructors) {
  std::vector<int> log;
  Arena src;
  Tracked* obj = src.create<Tracked>(1, &log);
  Arena dst = std::move(src);
  EXPECT_TRUE(log.empty());  // move must not destroy
  EXPECT_EQ(obj->id, 1);     // object did not move
  dst.reset();
  EXPECT_EQ(log, (std::vector<int>{1}));
}

// ---------------------------------------------------------------------------
// Arena-backed NICs in a live network

ether::Frame bcast(ether::MacAddress src) {
  return ether::Frame::ethernet2(ether::MacAddress::broadcast(), src,
                                 ether::EtherType::kExperimental,
                                 util::ByteBuffer(64, 0x5A));
}

TEST(Arena, ArenaBackedNicsCarryTraffic) {
  Network net;
  Arena arena;
  LanSegment& lan = net.add_segment("lan");
  Nic& a = net.add_nic(arena, "a", lan);
  Nic& b = net.add_nic(arena, "b", lan);
  int got = 0;
  b.set_rx_handler([&](const ether::WireFrame&) { ++got; });
  a.transmit(bcast(a.mac()));
  net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(Arena, DetachMidBurstDropsRemainderAndSurvivesTeardown) {
  // An arena NIC detached while a burst is still paced out must deliver
  // nothing further, and destroying the whole arena while frames are
  // still in flight must not leave dangling closures in the scheduler.
  Network net;
  int delivered = 0;
  {
    Arena arena;
    LanSegment& lan = net.add_segment("lan");
    Nic& tx = net.add_nic(arena, "tx", lan);
    Nic& rx = net.add_nic(arena, "rx", lan);
    rx.set_rx_handler([&](const ether::WireFrame&) { ++delivered; });
    tx.set_tx_queue_limit(16);
    std::vector<ether::WireFrame> burst;
    for (int i = 0; i < 8; ++i) burst.emplace_back(bcast(tx.mac()));
    ASSERT_EQ(tx.transmit_burst(burst), 8u);

    // Let the first frame land, then pull the receiver off the wire.
    net.scheduler().run_until(net.now() + microseconds(20));
    const int before_detach = delivered;
    rx.detach();
    net.scheduler().run();
    EXPECT_EQ(delivered, before_detach);
  }  // arena destroys both NICs here (scheduler entries may still exist)

  // Drain anything the teardown left behind: must not crash or deliver.
  net.scheduler().run();
}

TEST(Arena, DestroyingArenaNicsMidBurstLeavesSchedulerSafe) {
  Network net;
  LanSegment& lan = net.add_segment("lan");
  int delivered = 0;
  Nic& rx = net.add_nic("rx", lan);  // network-owned, outlives the arena
  rx.set_rx_handler([&](const ether::WireFrame&) { ++delivered; });
  {
    Arena arena;
    Nic& tx = net.add_nic(arena, "tx", lan);
    tx.set_tx_queue_limit(16);
    std::vector<ether::WireFrame> burst;
    for (int i = 0; i < 8; ++i) burst.emplace_back(bcast(tx.mac()));
    ASSERT_EQ(tx.transmit_burst(burst), 8u);
    // Destroy the transmitter with the whole burst still queued.
  }
  net.scheduler().run();
  // The in-flight run may deliver frames already admitted to the wire,
  // but nothing may crash and the survivor keeps receiving afterwards.
  Nic& tx2 = net.add_nic("tx2", lan);
  const int before = delivered;
  tx2.transmit(bcast(tx2.mac()));
  net.scheduler().run();
  EXPECT_EQ(delivered, before + 1);
}

}  // namespace
}  // namespace ab::netsim
