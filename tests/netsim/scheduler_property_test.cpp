// Determinism property test for the scheduler rewrite: seeded random
// programs of interleaved schedule_at / schedule_after / schedule_batch /
// schedule_run (monotone timed runs) / cancel (single ids and whole
// BatchId runs) / run_until / step / run are executed against both cores
// -- the indexed 4-ary heap (Scheduler) and the PR 1 priority_queue +
// live-set core (BaselineScheduler), whose observable contract is the
// oracle. The baseline has no batch or run API, which is the point: a
// same-time run is DEFINED as k individual same-time events and a timed
// run as k individual events at its k times, so the oracle schedules k
// events and cancels k ids where the indexed core takes one insert and one
// BatchId cancel. Firing order, the clock after every op, and pending()
// after every op must be identical, including events scheduled from inside
// callbacks, budgets that split a run, and cancels of already-fired ids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/netsim/baseline_scheduler.h"
#include "src/netsim/scheduler.h"
#include "src/util/rng.h"

namespace ab::netsim {
namespace {

struct Op {
  enum Kind {
    kSchedule,
    kScheduleBatch,
    kScheduleRun,  ///< monotone timed run (schedule_run_at)
    kCancel,
    kCancelBatch,
    kRunUntil,
    kStep,
    kRunBudget
  };
  Kind kind = kSchedule;
  std::int64_t delay_us = 0;   ///< kSchedule/kScheduleBatch: delay (may be
                               ///< negative); kRunUntil: window
  bool spawn_child = false;    ///< kSchedule: callback schedules a child event
  std::int64_t child_delay_us = 0;
  std::size_t batch_size = 0;  ///< kScheduleBatch/kScheduleRun: entries (0
                               ///< exercises the no-op)
  std::vector<std::int64_t> run_delays_us;  ///< kScheduleRun: sorted delays
                                            ///< (may start negative)
  std::size_t cancel_sel = 0;  ///< kCancel/kCancelBatch: index into issued
                               ///< handles (mod size)
  std::size_t budget = 0;      ///< kRunBudget: max events
};

std::vector<Op> generate_program(std::uint64_t seed, int length) {
  util::Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    Op op;
    const std::uint64_t roll = rng.uniform(0, 99);
    if (roll < 35) {
      op.kind = Op::kSchedule;
      // Mostly future, occasionally negative to exercise the clamp.
      op.delay_us = static_cast<std::int64_t>(rng.uniform(0, 2100)) - 100;
      op.spawn_child = rng.chance(0.3);
      op.child_delay_us = static_cast<std::int64_t>(rng.uniform(0, 500));
    } else if (roll < 45) {
      op.kind = Op::kScheduleBatch;
      op.delay_us = static_cast<std::int64_t>(rng.uniform(0, 2100)) - 100;
      op.batch_size = static_cast<std::size_t>(rng.uniform(0, 5));
    } else if (roll < 50) {
      op.kind = Op::kScheduleRun;
      op.batch_size = static_cast<std::size_t>(rng.uniform(0, 5));
      for (std::size_t e = 0; e < op.batch_size; ++e) {
        op.run_delays_us.push_back(static_cast<std::int64_t>(rng.uniform(0, 2100)) -
                                   100);
      }
      // The API takes non-decreasing times; sorting keeps random draws
      // valid while exercising equal-time pairs.
      std::sort(op.run_delays_us.begin(), op.run_delays_us.end());
    } else if (roll < 65) {
      op.kind = Op::kCancel;
      op.cancel_sel = static_cast<std::size_t>(rng.uniform(0, 1 << 20));
    } else if (roll < 73) {
      op.kind = Op::kCancelBatch;
      op.cancel_sel = static_cast<std::size_t>(rng.uniform(0, 1 << 20));
    } else if (roll < 85) {
      op.kind = Op::kRunUntil;
      op.delay_us = static_cast<std::int64_t>(rng.uniform(0, 3000));
    } else if (roll < 95) {
      op.kind = Op::kStep;
    } else {
      op.kind = Op::kRunBudget;
      op.budget = static_cast<std::size_t>(rng.uniform(0, 5));
    }
    ops.push_back(op);
  }
  return ops;
}

/// Everything observable about one execution.
struct Observation {
  std::vector<int> fired;              ///< event labels in firing order
  std::vector<std::int64_t> clock_ns;  ///< now() after every op
  std::vector<std::size_t> pending;    ///< pending() after every op
  bool empty_at_end = false;
  std::uint64_t executed = 0;
};

/// Batch adapter for the indexed core: the real schedule_batch_at /
/// BatchId-cancel API.
struct IndexedBatchOps {
  std::vector<BatchId> handles;

  void schedule(Scheduler& sched, Observation& obs, Duration delay, int first_label,
                std::size_t count) {
    std::vector<Scheduler::Callback> fns;
    for (std::size_t i = 0; i < count; ++i) {
      const int label = first_label + static_cast<int>(i);
      fns.emplace_back([&obs, label] { obs.fired.push_back(label); });
    }
    handles.push_back(sched.schedule_batch_after(delay, fns));
  }

  void cancel(Scheduler& sched, std::size_t sel) {
    if (!handles.empty()) sched.cancel(handles[sel % handles.size()]);
  }

  /// Timed-run adapter: one schedule_run_at; the handle joins the same
  /// pool BatchId cancels draw from.
  void schedule_run(Scheduler& sched, Observation& obs,
                    const std::vector<std::int64_t>& delays_us, int first_label) {
    std::vector<Scheduler::TimedEntry> entries;
    for (std::size_t i = 0; i < delays_us.size(); ++i) {
      const int label = first_label + static_cast<int>(i);
      Scheduler::TimedEntry e;
      e.when = sched.now() + microseconds(delays_us[i]);
      e.fn = [&obs, label] { obs.fired.push_back(label); };
      entries.push_back(std::move(e));
    }
    handles.push_back(sched.schedule_run_at(entries));
  }
};

/// Batch adapter for the baseline oracle, which has no batch API: a run IS
/// k individual events by definition, so schedule k events and cancel all
/// their ids -- the semantic contract the indexed core must match.
struct BaselineBatchOps {
  std::vector<std::vector<BaselineEventId>> handles;

  void schedule(BaselineScheduler& sched, Observation& obs, Duration delay,
                int first_label, std::size_t count) {
    std::vector<BaselineEventId> ids;
    for (std::size_t i = 0; i < count; ++i) {
      const int label = first_label + static_cast<int>(i);
      ids.push_back(sched.schedule_after(
          delay, [&obs, label] { obs.fired.push_back(label); }));
    }
    handles.push_back(std::move(ids));
  }

  void cancel(BaselineScheduler& sched, std::size_t sel) {
    if (handles.empty()) return;
    for (const BaselineEventId id : handles[sel % handles.size()]) sched.cancel(id);
  }

  /// Timed-run oracle: a run IS k individual events at its k times, so
  /// schedule k events (negative delays clamp exactly like the run's
  /// per-entry clamp) and cancel all their ids as one group.
  void schedule_run(BaselineScheduler& sched, Observation& obs,
                    const std::vector<std::int64_t>& delays_us, int first_label) {
    std::vector<BaselineEventId> ids;
    for (std::size_t i = 0; i < delays_us.size(); ++i) {
      const int label = first_label + static_cast<int>(i);
      ids.push_back(sched.schedule_after(
          microseconds(delays_us[i]), [&obs, label] { obs.fired.push_back(label); }));
    }
    handles.push_back(std::move(ids));
  }
};

template <typename SchedulerT>
Observation execute(const std::vector<Op>& ops) {
  using Id = decltype(std::declval<SchedulerT&>().schedule_after(Duration{}, [] {}));
  SchedulerT sched;
  Observation obs;
  std::vector<Id> ids;
  std::conditional_t<std::is_same_v<SchedulerT, Scheduler>, IndexedBatchOps,
                     BaselineBatchOps>
      batches;

  int label = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kSchedule: {
        const int this_label = label++;
        const int child_label = label++;
        if (op.spawn_child) {
          const auto child_delay = microseconds(op.child_delay_us);
          ids.push_back(sched.schedule_after(
              microseconds(op.delay_us),
              [&obs, &sched, &ids, this_label, child_label, child_delay] {
                obs.fired.push_back(this_label);
                ids.push_back(sched.schedule_after(
                    child_delay,
                    [&obs, child_label] { obs.fired.push_back(child_label); }));
              }));
        } else {
          ids.push_back(sched.schedule_after(
              microseconds(op.delay_us),
              [&obs, this_label] { obs.fired.push_back(this_label); }));
        }
        break;
      }
      case Op::kScheduleBatch: {
        const int first_label = label;
        label += static_cast<int>(op.batch_size);
        batches.schedule(sched, obs, microseconds(op.delay_us), first_label,
                         op.batch_size);
        break;
      }
      case Op::kScheduleRun: {
        const int first_label = label;
        label += static_cast<int>(op.run_delays_us.size());
        batches.schedule_run(sched, obs, op.run_delays_us, first_label);
        break;
      }
      case Op::kCancel:
        if (!ids.empty()) sched.cancel(ids[op.cancel_sel % ids.size()]);
        break;
      case Op::kCancelBatch:
        batches.cancel(sched, op.cancel_sel);
        break;
      case Op::kRunUntil:
        sched.run_until(sched.now() + microseconds(op.delay_us));
        break;
      case Op::kStep:
        sched.step();
        break;
      case Op::kRunBudget:
        sched.run(op.budget);
        break;
    }
    obs.clock_ns.push_back(sched.now().time_since_epoch().count());
    obs.pending.push_back(sched.pending());
  }
  sched.run();  // drain
  obs.empty_at_end = sched.empty();
  obs.executed = sched.executed();
  return obs;
}

class SchedulerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerEquivalence, RandomProgramsFireIdenticallyOnBothCores) {
  const std::vector<Op> program = generate_program(GetParam(), 400);
  const Observation baseline = execute<BaselineScheduler>(program);
  const Observation indexed = execute<Scheduler>(program);

  EXPECT_EQ(baseline.fired, indexed.fired) << "seed " << GetParam();
  EXPECT_EQ(baseline.clock_ns, indexed.clock_ns) << "seed " << GetParam();
  EXPECT_EQ(baseline.pending, indexed.pending) << "seed " << GetParam();
  EXPECT_EQ(baseline.executed, indexed.executed) << "seed " << GetParam();
  EXPECT_TRUE(baseline.empty_at_end);
  EXPECT_TRUE(indexed.empty_at_end);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerEquivalence,
                         ::testing::Range<std::uint64_t>(1, 41));

// Equal-time FIFO at scale: many events on one timestamp interleaved with
// cancels must fire in exact submission order on both cores.
TEST(SchedulerEquivalenceFifo, EqualTimestampsKeepSubmissionOrderUnderCancellation) {
  constexpr int kEvents = 500;
  util::Rng rng(7);
  std::vector<bool> cancel_mask;
  for (int i = 0; i < kEvents; ++i) cancel_mask.push_back(rng.chance(0.4));

  const auto run = [&](auto sched) {
    std::vector<int> fired;
    using Id = decltype(sched.schedule_after(Duration{}, [] {}));
    std::vector<Id> ids;
    for (int i = 0; i < kEvents; ++i) {
      ids.push_back(
          sched.schedule_after(milliseconds(5), [&fired, i] { fired.push_back(i); }));
    }
    for (int i = 0; i < kEvents; ++i) {
      if (cancel_mask[static_cast<std::size_t>(i)]) {
        sched.cancel(ids[static_cast<std::size_t>(i)]);
      }
    }
    sched.run();
    return fired;
  };

  const std::vector<int> baseline = run(BaselineScheduler{});
  const std::vector<int> indexed = run(Scheduler{});
  EXPECT_EQ(baseline, indexed);
  // And the order is the submission order of the survivors.
  std::vector<int> survivors;
  for (int i = 0; i < kEvents; ++i) {
    if (!cancel_mask[static_cast<std::size_t>(i)]) survivors.push_back(i);
  }
  EXPECT_EQ(indexed, survivors);
}

// Batched runs mixed with singles on ONE timestamp, some runs cancelled
// wholesale: the surviving labels must fire in exact submission order on
// both cores (the run occupying its k order numbers in the FIFO).
TEST(SchedulerEquivalenceFifo, BatchRunsKeepSubmissionOrderAmongSingles) {
  constexpr int kGroups = 120;
  util::Rng rng(11);
  std::vector<std::size_t> group_size;  // 0: single event; >0: run of k
  std::vector<bool> cancel_mask;
  for (int g = 0; g < kGroups; ++g) {
    group_size.push_back(rng.chance(0.5) ? static_cast<std::size_t>(rng.uniform(1, 4))
                                         : 0);
    cancel_mask.push_back(rng.chance(0.35));
  }

  std::vector<int> expected;
  {
    int label = 0;
    for (int g = 0; g < kGroups; ++g) {
      const int n = group_size[static_cast<std::size_t>(g)] == 0
                        ? 1
                        : static_cast<int>(group_size[static_cast<std::size_t>(g)]);
      for (int i = 0; i < n; ++i, ++label) {
        if (!cancel_mask[static_cast<std::size_t>(g)]) expected.push_back(label);
      }
    }
  }

  // Indexed core: real batches.
  std::vector<int> indexed_fired;
  {
    Scheduler sched;
    std::vector<EventId> single_ids(static_cast<std::size_t>(kGroups));
    std::vector<BatchId> batch_ids(static_cast<std::size_t>(kGroups));
    int label = 0;
    for (int g = 0; g < kGroups; ++g) {
      const std::size_t k = group_size[static_cast<std::size_t>(g)];
      if (k == 0) {
        const int this_label = label++;
        single_ids[static_cast<std::size_t>(g)] = sched.schedule_after(
            milliseconds(5),
            [&indexed_fired, this_label] { indexed_fired.push_back(this_label); });
      } else {
        std::vector<Scheduler::Callback> fns;
        for (std::size_t i = 0; i < k; ++i) {
          const int this_label = label++;
          fns.emplace_back(
              [&indexed_fired, this_label] { indexed_fired.push_back(this_label); });
        }
        batch_ids[static_cast<std::size_t>(g)] =
            sched.schedule_batch_after(milliseconds(5), fns);
      }
    }
    for (int g = 0; g < kGroups; ++g) {
      if (!cancel_mask[static_cast<std::size_t>(g)]) continue;
      if (group_size[static_cast<std::size_t>(g)] == 0) {
        sched.cancel(single_ids[static_cast<std::size_t>(g)]);
      } else {
        sched.cancel(batch_ids[static_cast<std::size_t>(g)]);
      }
    }
    sched.run();
  }

  EXPECT_EQ(indexed_fired, expected);
}

}  // namespace
}  // namespace ab::netsim
