#!/usr/bin/env bash
# Bench-smoke guards for the batched delivery + batched transmit fast
# paths, run by CI and ci.sh after the Release bench smoke:
#
#   1. BENCH_scheduler.json must carry the batch_insert AND timed_run cells
#      (the schedule_batch_at / schedule_run_at microbenches) -- a refactor
#      that silently drops either would stop tracking the batch paths
#      across PRs.
#   2. BENCH_topology.json's flood_profile must stay at O(1) scheduler
#      events per broadcast. The bound is a small constant (the batched
#      path measures 2.0: one transmit event + one per-segment delivery
#      walk) -- deliberately NOT receivers + 1, because a regression to
#      one-delivery-event-per-receiver costs exactly receivers + 1 and
#      would slip through a bound at that value. Its insert count must stay
#      strictly below the per-frame transmitter chain's 2.0/broadcast (the
#      burst drain costs ~1: one run for the whole burst + one delivery
#      insert per broadcast).
#   3. egress_profile: a bridge flood hop must cost O(1) scheduler inserts
#      -- the TxBatch run -- strictly below the per-port model (ports - 1),
#      which is exactly what a regression to per-port Nic::transmit costs.
#   4. ttcp_write_profile: a fragmented write must cost O(1) scheduler
#      inserts -- the processing-element run -- strictly below the
#      per-fragment model.
#   5. mac_lookup must be present (the flat MAC table trajectory; no speed
#      bound, CI runners are noisy).
#   6. aggregate_profile: the million-station cell (star-8x125000 under the
#      aggregate-hosts workload) must have actually run at size, stayed
#      within the per-station memory and build-time budgets, and answered
#      every ping. The budgets sit between the arena + aggregate model's
#      measured cost (804 B, 0.64-2.3 us per station) and the per-object
#      model's (1433 B, 16.2 us), so a regression toward per-station heap
#      objects or quadratic attach fails here even if the cell still
#      completes.
#   7. tcp_incast: N TCP senders offering 2x the hub link must deliver
#      every byte (TCP's reliability contract under queue-overflow drops)
#      and keep aggregate goodput >= link/4 with the slowest stream >=
#      fair_share/8 -- loose constant factors that only an incast collapse
#      (RTO synchronization serializing the streams) can break.
#   8. BENCH_parallel.json (the sharded-core scaling bench) must carry the
#      legacy run plus all four sharded thread counts, report the bench's
#      own bit-identity verdict as deterministic, and agree here too:
#      events and frames_carried equal across every sharded run. The
#      4-thread speedup must reach 2.0x -- but ONLY when the runner has
#      >= 4 hardware threads; starved CI containers (1 vCPU) skip the
#      bound with an explicit note rather than fake it.
#   9. aggregate_parallel (same file, "agg-" rows): the million-station
#      cell through the sharded core. The partitioned aggregate workload
#      must reproduce the legacy single-scheduler run bit-identically
#      (frames, bytes, pings, MAC entries -- aggregate_matches_legacy from
#      the bench, cross-checked on the rows here), every sharded thread
#      count must agree with agg-sharded-t1 on events and frames, the
#      4-thread speedup over SIM time (the serial build excluded) must
#      reach 2.0x under the same hardware-thread guard as #8, and
#      bytes_per_station must stay inside the same 1024 B budget as #6.
#
# Usage: scripts/check_bench_smoke.sh [build-dir]   (default: build-release)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build-release}"
sched_json="$build_dir/BENCH_scheduler.json"
topo_json="$build_dir/BENCH_topology.json"
par_json="$build_dir/BENCH_parallel.json"

fail() {
  echo "check_bench_smoke: $1" >&2
  exit 1
}

# Pulls "field": <number> out of a single-line JSON cell.
field() {
  echo "$1" | sed -n "s/.*\"$2\": \([0-9][0-9.]*\).*/\1/p"
}

[ -f "$sched_json" ] || fail "missing $sched_json (run micro_scheduler first)"
[ -f "$topo_json" ] || fail "missing $topo_json (run macro_topology first)"
[ -f "$par_json" ] || fail "missing $par_json (run parallel_scaling first)"

grep -q '"batch_insert"' "$sched_json" \
  || fail "$sched_json has no batch_insert cell"
grep -q '"timed_run"' "$sched_json" \
  || fail "$sched_json has no timed_run cell"

# Each profile is emitted on one line; pull its fields out with sed.
profile_line=$(grep '"flood_profile"' "$topo_json") \
  || fail "$topo_json has no flood_profile cell"
receivers=$(field "$profile_line" receivers)
epb=$(field "$profile_line" events_per_broadcast)
ipb=$(field "$profile_line" inserts_per_broadcast)
[ -n "$receivers" ] && [ -n "$epb" ] && [ -n "$ipb" ] \
  || fail "could not parse flood_profile from: $profile_line"

# Matches kMaxEventsPerBroadcast / kMaxInsertsPerBroadcast in
# bench/macro_topology.cpp.
max_epb=4
if ! awk -v epb="$epb" -v max="$max_epb" 'BEGIN { exit !(epb <= max) }'; then
  fail "flood cell regressed: $epb events/broadcast with $receivers receivers (limit: $max_epb)"
fi
# Matches kMaxInsertsPerBroadcast: the k-broadcast flood drains as one
# burst run plus one delivery run, so inserts/broadcast is ~2/k (measures
# 0.02 at k=128), far below the per-frame chain's 2.0.
max_ipb=0.25
if ! awk -v ipb="$ipb" -v max="$max_ipb" 'BEGIN { exit !(ipb <= max) }'; then
  fail "flood cell regressed to per-frame transmit inserts: $ipb inserts/broadcast (limit: $max_ipb, chain model: 2.0)"
fi

egress_line=$(grep '"egress_profile"' "$topo_json") \
  || fail "$topo_json has no egress_profile cell"
ports=$(field "$egress_line" ports)
ipf=$(field "$egress_line" inserts_per_flood)
[ -n "$ports" ] && [ -n "$ipf" ] \
  || fail "could not parse egress_profile from: $egress_line"
# Matches kMaxInsertsPerFlood in bench/macro_topology.cpp: constant, and
# strictly below the per-port model (ports - 1) a regression would cost.
max_ipf=2
if ! awk -v ipf="$ipf" -v max="$max_ipf" -v ports="$ports" \
     'BEGIN { exit !(ipf <= max && max < ports - 1) }'; then
  fail "egress flood hop regressed: $ipf inserts/flood on $ports ports (limit: $max_ipf)"
fi

write_line=$(grep '"ttcp_write_profile"' "$topo_json") \
  || fail "$topo_json has no ttcp_write_profile cell"
frags=$(field "$write_line" fragments)
ipw=$(field "$write_line" inserts_per_write)
[ -n "$frags" ] && [ -n "$ipw" ] \
  || fail "could not parse ttcp_write_profile from: $write_line"
# Matches kMaxInsertsPerWrite: constant, strictly below the per-fragment
# model a regression would cost.
max_ipw=2
if ! awk -v ipw="$ipw" -v max="$max_ipw" -v frags="$frags" \
     'BEGIN { exit !(ipw <= max && max < frags) }'; then
  fail "ttcp write hop regressed: $ipw inserts/write over $frags fragments (limit: $max_ipw)"
fi

grep -q '"mac_lookup"' "$topo_json" \
  || fail "$topo_json has no mac_lookup cell"

agg_line=$(grep '"aggregate_profile"' "$topo_json") \
  || fail "$topo_json has no aggregate_profile cell"
stations=$(field "$agg_line" stations)
bps=$(field "$agg_line" bytes_per_station)
bups=$(field "$agg_line" build_us_per_station)
agg_sent=$(field "$agg_line" pings_sent)
agg_answered=$(field "$agg_line" pings_answered)
[ -n "$stations" ] && [ -n "$bps" ] && [ -n "$bups" ] \
  && [ -n "$agg_sent" ] && [ -n "$agg_answered" ] \
  || fail "could not parse aggregate_profile from: $agg_line"
# Matches kMaxBytesPerStation / kMaxBuildUsPerStation in
# bench/macro_topology.cpp. bytes_per_station reads 0 when the platform
# hides RSS; the build-time bound still holds there.
min_stations=1000000
max_bps=1024
max_bups=6.0
if ! awk -v n="$stations" -v min="$min_stations" 'BEGIN { exit !(n >= min) }'; then
  fail "station-scale cell shrank: $stations stations (floor: $min_stations)"
fi
if ! awk -v b="$bps" -v max="$max_bps" 'BEGIN { exit !(b == 0 || b <= max) }'; then
  fail "station memory regressed: $bps bytes/station (limit: $max_bps, per-object model: 1433)"
fi
if ! awk -v b="$bups" -v max="$max_bups" 'BEGIN { exit !(b <= max) }'; then
  fail "station build time regressed: $bups us/station (limit: $max_bups, per-object model: 16.2)"
fi
if [ "$agg_sent" -eq 0 ] || [ "$agg_answered" -ne "$agg_sent" ]; then
  fail "aggregate workload lost pings: $agg_answered/$agg_sent answered"
fi

# --- tcp_incast: reliability + goodput under 2x offered load -------------

incast_line=$(grep '"tcp_incast"' "$topo_json") \
  || fail "$topo_json has no tcp_incast cell"
inc_senders=$(field "$incast_line" senders)
inc_link=$(field "$incast_line" link_mbps)
inc_goodput=$(field "$incast_line" goodput_mbps)
inc_fair=$(field "$incast_line" fair_share_mbps)
inc_min=$(field "$incast_line" min_stream_mbps)
inc_expected=$(field "$incast_line" bytes_expected)
inc_received=$(field "$incast_line" bytes_received)
inc_conns=$(field "$incast_line" connections)
[ -n "$inc_senders" ] && [ -n "$inc_link" ] && [ -n "$inc_goodput" ] \
  && [ -n "$inc_fair" ] && [ -n "$inc_min" ] && [ -n "$inc_expected" ] \
  && [ -n "$inc_received" ] && [ -n "$inc_conns" ] \
  || fail "could not parse tcp_incast from: $incast_line"
if [ "$inc_conns" -ne "$inc_senders" ]; then
  fail "tcp incast accepted $inc_conns/$inc_senders connections"
fi
if [ "$inc_received" != "$inc_expected" ]; then
  fail "tcp incast lost bytes: $inc_received/$inc_expected delivered"
fi
# Matches the incast_ok bounds in bench/macro_topology.cpp: goodput within
# a constant factor of the link, slowest stream within a constant factor
# of fair share. Only an incast collapse breaks these.
if ! awk -v g="$inc_goodput" -v l="$inc_link" 'BEGIN { exit !(g >= l / 4.0) }'; then
  fail "tcp incast goodput collapsed: $inc_goodput Mb/s on a $inc_link Mb/s link (floor: link/4)"
fi
if ! awk -v m="$inc_min" -v f="$inc_fair" 'BEGIN { exit !(m >= f / 8.0) }'; then
  fail "tcp incast starved a stream: slowest $inc_min Mb/s vs fair share $inc_fair Mb/s (floor: fair/8)"
fi

# --- BENCH_parallel.json: sharded-core determinism + scaling -------------

grep -q '"run": "legacy"' "$par_json" \
  || fail "$par_json has no legacy baseline run"
grep -q '"deterministic": true' "$par_json" \
  || fail "$par_json: bench reported non-deterministic sharded runs"

hw=$(field "$(grep '"hardware_concurrency"' "$par_json")" hardware_concurrency)
[ -n "$hw" ] || fail "could not parse hardware_concurrency from $par_json"

# Cross-check the bench's verdict: every sharded run line must agree on
# events and frames_carried with sharded-t1.
t1_line=$(grep '"run": "sharded-t1"' "$par_json") \
  || fail "$par_json has no sharded-t1 run"
t1_events=$(field "$t1_line" events)
t1_frames=$(field "$t1_line" frames_carried)
[ -n "$t1_events" ] && [ -n "$t1_frames" ] \
  || fail "could not parse sharded-t1 from: $t1_line"
for t in 2 4 8; do
  line=$(grep "\"run\": \"sharded-t$t\"" "$par_json") \
    || fail "$par_json has no sharded-t$t run"
  ev=$(field "$line" events)
  fr=$(field "$line" frames_carried)
  if [ "$ev" != "$t1_events" ] || [ "$fr" != "$t1_frames" ]; then
    fail "sharded-t$t diverges from sharded-t1: events $ev vs $t1_events, frames $fr vs $t1_frames"
  fi
done

# The scaling bound is only meaningful with real cores under the workers.
min_speedup=2.0
t4_speedup=$(field "$(grep '"run": "sharded-t4"' "$par_json")" speedup_vs_1t)
[ -n "$t4_speedup" ] || fail "could not parse sharded-t4 speedup from $par_json"
if [ "$hw" -ge 4 ]; then
  if ! awk -v s="$t4_speedup" -v min="$min_speedup" \
       'BEGIN { exit !(s >= min) }'; then
    fail "4-thread sharded speedup regressed: ${t4_speedup}x (floor: ${min_speedup}x on $hw hardware threads)"
  fi
  parallel_note="4-thread speedup ${t4_speedup}x on $hw hardware threads"
else
  parallel_note="4-thread speedup bound SKIPPED ($hw hardware thread(s) < 4; measured ${t4_speedup}x)"
fi

# --- aggregate_parallel: the million-station cell, sharded ---------------

grep -q '"aggregate_deterministic": true' "$par_json" \
  || fail "$par_json: sharded aggregate runs diverge across thread counts"
grep -q '"aggregate_matches_legacy": true' "$par_json" \
  || fail "$par_json: sharded aggregate workload diverges from the legacy path"

agg_legacy_line=$(grep '"run": "agg-legacy"' "$par_json") \
  || fail "$par_json has no agg-legacy run"
agg_t1_line=$(grep '"run": "agg-sharded-t1"' "$par_json") \
  || fail "$par_json has no agg-sharded-t1 run"
agg_t1_events=$(field "$agg_t1_line" events)
agg_t1_frames=$(field "$agg_t1_line" frames_carried)
[ -n "$agg_t1_events" ] && [ -n "$agg_t1_frames" ] \
  || fail "could not parse agg-sharded-t1 from: $agg_t1_line"
for t in 2 4 8; do
  line=$(grep "\"run\": \"agg-sharded-t$t\"" "$par_json") \
    || fail "$par_json has no agg-sharded-t$t run"
  ev=$(field "$line" events)
  fr=$(field "$line" frames_carried)
  if [ "$ev" != "$agg_t1_events" ] || [ "$fr" != "$agg_t1_frames" ]; then
    fail "agg-sharded-t$t diverges from agg-sharded-t1: events $ev vs $agg_t1_events, frames $fr vs $agg_t1_frames"
  fi
done

# Cross-check the bench's bit-identity verdict on the observable rows: the
# partitioned workload must carry the legacy run's exact traffic.
for f in frames_carried bytes_carried pings_answered mac_entries \
         stream_bytes_received; do
  legacy_v=$(field "$agg_legacy_line" "$f")
  t1_v=$(field "$agg_t1_line" "$f")
  [ -n "$legacy_v" ] && [ -n "$t1_v" ] \
    || fail "could not parse $f from aggregate rows"
  if [ "$t1_v" != "$legacy_v" ]; then
    fail "sharded aggregate $f diverges from legacy: $t1_v vs $legacy_v"
  fi
done

# Same per-station memory budget as the aggregate_profile cell (#6);
# 0 means the platform hides RSS, not a pass at 0 bytes.
agg_bps=$(field "$agg_t1_line" bytes_per_station)
[ -n "$agg_bps" ] || fail "could not parse aggregate bytes_per_station"
if ! awk -v b="$agg_bps" -v max="$max_bps" 'BEGIN { exit !(b == 0 || b <= max) }'; then
  fail "sharded aggregate station memory regressed: $agg_bps bytes/station (limit: $max_bps)"
fi

# Speedup over sim time (the bench already subtracts the serial build);
# same hardware-thread guard as the flood cell's bound.
agg_t4_speedup=$(field "$(grep '"run": "agg-sharded-t4"' "$par_json")" speedup_vs_1t)
[ -n "$agg_t4_speedup" ] || fail "could not parse agg-sharded-t4 speedup from $par_json"
if [ "$hw" -ge 4 ]; then
  if ! awk -v s="$agg_t4_speedup" -v min="$min_speedup" \
       'BEGIN { exit !(s >= min) }'; then
    fail "4-thread aggregate speedup regressed: ${agg_t4_speedup}x (floor: ${min_speedup}x on $hw hardware threads)"
  fi
  aggregate_note="aggregate 4-thread speedup ${agg_t4_speedup}x"
else
  aggregate_note="aggregate 4-thread speedup bound SKIPPED ($hw hardware thread(s) < 4; measured ${agg_t4_speedup}x)"
fi

echo "check_bench_smoke: OK (batch_insert + timed_run cells present;" \
  "flood profile at $epb events and $ipb inserts/broadcast for $receivers receivers;" \
  "egress hop at $ipf inserts/flood on $ports ports;" \
  "ttcp write at $ipw inserts/write over $frags fragments; mac_lookup present;" \
  "$stations stations at $bps B and $bups us each, $agg_answered/$agg_sent pings;" \
  "tcp incast $inc_goodput Mb/s goodput, slowest stream $inc_min Mb/s, all bytes delivered;" \
  "sharded runs deterministic, $parallel_note;" \
  "sharded aggregate bit-identical to legacy at $agg_bps B/station, $aggregate_note)"
