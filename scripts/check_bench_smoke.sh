#!/usr/bin/env bash
# Bench-smoke guards for the batched-delivery fast path, run by CI and
# ci.sh after the Release bench smoke:
#
#   1. BENCH_scheduler.json must carry the batch_insert cell (the
#      schedule_batch_at microbench) -- a refactor that silently drops the
#      cell would stop tracking the batch path across PRs.
#   2. BENCH_topology.json's flood_profile must stay at O(1) scheduler
#      events per broadcast. The bound is a small constant (the batched
#      path measures 2.0: one transmit event + one per-segment delivery
#      walk) -- deliberately NOT receivers + 1, because a regression to
#      one-delivery-event-per-receiver costs exactly receivers + 1 and
#      would slip through a bound at that value.
#
# Usage: scripts/check_bench_smoke.sh [build-dir]   (default: build-release)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build-release}"
sched_json="$build_dir/BENCH_scheduler.json"
topo_json="$build_dir/BENCH_topology.json"

fail() {
  echo "check_bench_smoke: $1" >&2
  exit 1
}

[ -f "$sched_json" ] || fail "missing $sched_json (run micro_scheduler first)"
[ -f "$topo_json" ] || fail "missing $topo_json (run macro_topology first)"

grep -q '"batch_insert"' "$sched_json" \
  || fail "$sched_json has no batch_insert cell"

# flood_profile is emitted on one line; pull its fields out with sed.
profile_line=$(grep '"flood_profile"' "$topo_json") \
  || fail "$topo_json has no flood_profile cell"
receivers=$(echo "$profile_line" | sed -n 's/.*"receivers": \([0-9][0-9]*\).*/\1/p')
epb=$(echo "$profile_line" | sed -n 's/.*"events_per_broadcast": \([0-9.][0-9.]*\).*/\1/p')
[ -n "$receivers" ] && [ -n "$epb" ] \
  || fail "could not parse receivers/events_per_broadcast from: $profile_line"

# Matches kMaxEventsPerBroadcast in bench/macro_topology.cpp.
max_epb=4
if ! awk -v epb="$epb" -v max="$max_epb" 'BEGIN { exit !(epb <= max) }'; then
  fail "flood cell regressed: $epb events/broadcast with $receivers receivers (limit: $max_epb)"
fi

echo "check_bench_smoke: OK (batch_insert cell present; flood profile at $epb events/broadcast for $receivers receivers)"
