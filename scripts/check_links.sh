#!/usr/bin/env bash
# Fails when any *.md file in the repo contains a relative markdown link to
# a file that does not exist. External links (http/https/mailto) and pure
# anchors are skipped; "path#anchor" is checked as "path". Run from anywhere;
# build trees are ignored.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
while IFS= read -r -d '' md; do
  dir=$(dirname "$md")
  # Pull out every (target) of an inline []() link, one per line.
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $md -> $target" >&2
      status=1
    fi
  done < <(grep -o ']([^)]*)' "$md" | sed 's/^](//; s/)$//')
done < <(find . -name '*.md' -not -path './build*/*' -not -path './.git/*' -print0)

if [ "$status" -eq 0 ]; then
  echo "docs link check: all relative links resolve"
fi
exit "$status"
